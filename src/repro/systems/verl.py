"""VeRL-like baseline: colocated time-sharing, vanilla decoding.

The paper's strongest baseline (HybridFlow): all workers serve the
rollout, then the same GPUs run inference and training via time-sharing.
No speculative decoding, no bubble harvesting — the long tail leaves
early-finishing workers idle.
"""

from __future__ import annotations

from repro.cluster.simulator import ClusterSpec, RlStepSimulator, StepWorkload
from repro.hardware.gpus import ModelSpec
from repro.systems.base import RlSystem, SystemStepReport


class VerlSystem(RlSystem):
    """Colocated RL training without rollout acceleration."""

    name = "VeRL"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        transition_overhead_s: float = 10.0,
    ) -> None:
        super().__init__(model, cluster)
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=None,
            spot_training=False,
            transition_overhead_s=transition_overhead_s,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={"idle_gpu_s": result.idle_gpu_s},
        )
