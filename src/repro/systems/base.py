"""Common interface for end-to-end system models."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.simulator import (
    ClusterSpec,
    RlStepSimulator,
    StepResult,
    StepWorkload,
)
from repro.hardware.gpus import ModelSpec


@dataclass
class SystemStepReport:
    """One system's result on one RL-step workload.

    Attributes:
        system: system name.
        step_time_s: wall-clock of the step.
        throughput_tps: (prompt+response tokens) / step time.
        phases: phase-duration breakdown.
        drafter_updates: spot-trainer updates harvested (TLT only).
        detail: extra system-specific metrics.
    """

    system: str
    step_time_s: float
    throughput_tps: float
    phases: Dict[str, float]
    drafter_updates: int = 0
    detail: Dict[str, float] = field(default_factory=dict)


class RlSystem(abc.ABC):
    """An RL training system: placement + rollout acceleration policy."""

    name: str = "system"

    def __init__(self, model: ModelSpec, cluster: ClusterSpec) -> None:
        self.model = model
        self.cluster = cluster

    @abc.abstractmethod
    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        """Simulate one RL step of this system on ``workload``."""

    @staticmethod
    def _report_from(
        name: str, result: StepResult, extra: Optional[Dict[str, float]] = None
    ) -> SystemStepReport:
        return SystemStepReport(
            system=name,
            step_time_s=result.step_time_s,
            throughput_tps=result.throughput_tps,
            phases={
                "rollout": result.rollout_s,
                "inference": result.inference_s,
                "training": result.training_s,
                "transition": result.transition_s,
            },
            drafter_updates=result.drafter_updates,
            detail=extra or {},
        )
