"""End-to-end RL training system models (paper §6 baselines).

Four systems share the step simulator and differ in placement and rollout
acceleration:

* :class:`OpenR1System` — disaggregated serving/training nodes with
  rollout-batch coupling (waves);
* :class:`VerlSystem` — colocated time-sharing, vanilla decoding (the
  state-of-the-art baseline, normalised to 1.0x);
* :class:`TltBaseSystem` — VeRL placement + adaptive SD with the
  model-free n-gram drafter;
* :class:`TltSystem` — full TLT: adaptive learned drafter kept fresh by
  spot training in rollout bubbles.
"""

from repro.systems.base import RlSystem, SystemStepReport
from repro.systems.openr1 import OpenR1System
from repro.systems.tlt import TltBaseSystem, TltSystem
from repro.systems.verl import VerlSystem

__all__ = [
    "RlSystem",
    "SystemStepReport",
    "OpenR1System",
    "VerlSystem",
    "TltBaseSystem",
    "TltSystem",
]
