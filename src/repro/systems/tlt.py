"""TLT and TLT-Base system models.

``TLT-Base`` is the paper's ablation: the adaptive rollout engine with the
model-free n-gram drafter only (no learned drafter, no spot training).
``TLT`` is the full system: a continuously adapted EAGLE drafter whose
freshness is maintained by spot training inside the long-tail bubbles,
plus the <1% bookkeeping overhead for drafter weight updates and
optimizer offloading the paper measures.
"""

from __future__ import annotations

from repro.cluster.simulator import (
    ClusterSpec,
    RlStepSimulator,
    StepWorkload,
)
from repro.hardware.gpus import ModelSpec
from repro.rollout.acceptance import ParametricAcceptance
from repro.rollout.adaptive import AdaptiveSdConfig
from repro.systems.base import RlSystem, SystemStepReport

#: Calibrated drafter qualities (fractions of the fresh-drafter accept
#: asymptote): the n-gram retrieval drafter (lookahead-style accept
#: lengths of ~4-5 on repetitive math/code) vs the spot-trained EAGLE.
MODEL_FREE_QUALITY = 0.6
ADAPTIVE_QUALITY = 1.0


class TltBaseSystem(RlSystem):
    """TLT with the model-free drafter only (paper's TLT-Base)."""

    name = "TLT-Base"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        activation_threshold: int = 32,
        transition_overhead_s: float = 10.0,
    ) -> None:
        super().__init__(model, cluster)
        sd_config = AdaptiveSdConfig(
            activation_threshold=activation_threshold,
            acceptance=ParametricAcceptance(
                drafter_quality=MODEL_FREE_QUALITY
            ),
        )
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=sd_config,
            spot_training=False,
            transition_overhead_s=transition_overhead_s,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={"idle_gpu_s": result.idle_gpu_s},
        )


class TltSystem(RlSystem):
    """Full TLT: adaptive learned drafter + spot training in bubbles."""

    name = "TLT"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        activation_threshold: int = 32,
        transition_overhead_s: float = 10.0,
        extra_overhead_fraction: float = 0.008,
        drafter_quality: float = ADAPTIVE_QUALITY,
    ) -> None:
        super().__init__(model, cluster)
        sd_config = AdaptiveSdConfig(
            activation_threshold=activation_threshold,
            acceptance=ParametricAcceptance(
                drafter_quality=drafter_quality
            ),
        )
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=sd_config,
            spot_training=True,
            transition_overhead_s=transition_overhead_s,
            extra_overhead_fraction=extra_overhead_fraction,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={
                "idle_gpu_s": result.idle_gpu_s,
                "drafter_train_gpu_s": result.drafter_train_gpu_s,
            },
        )
