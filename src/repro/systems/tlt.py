"""TLT and TLT-Base system models.

``TLT-Base`` is the paper's ablation: the adaptive rollout engine with the
model-free n-gram drafter only (no learned drafter, no spot training).
``TLT`` is the full system: a continuously adapted EAGLE drafter whose
freshness is maintained by spot training inside the long-tail bubbles,
plus the <1% bookkeeping overhead for drafter weight updates and
optimizer offloading the paper measures.

Each system carries its rollout policy in two interchangeable forms: the
roofline-calibrated cluster simulator (:meth:`~RlSystem.simulate_step`)
and, via :meth:`rollout_backend`, the *algorithmic* continuous-batching
engine — an :class:`~repro.rl.rollout_backends.AdaptiveSpeculativeRollout`
built from the same :class:`~repro.rollout.adaptive.AdaptiveSdConfig`, so
the elastic threshold and strategy pool that shape the simulated timeline
also drive real batched token generation on the TinyLM substrate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, TYPE_CHECKING

from repro.cluster.simulator import (
    ClusterSpec,
    RlStepSimulator,
    StepWorkload,
)
from repro.drafter.base import Drafter

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.spot.trainer import SpotTrainer
from repro.hardware.gpus import ModelSpec
from repro.llm.model import TinyLM
from repro.rl.rollout_backends import AdaptiveSpeculativeRollout
from repro.rollout.acceptance import ParametricAcceptance
from repro.rollout.adaptive import AdaptiveSdConfig, AdaptiveSdManager
from repro.serving.dispatch import DispatchPolicy
from repro.serving.frontend import ServingEngine
from repro.systems.base import RlSystem, SystemStepReport

#: Calibrated drafter qualities (fractions of the fresh-drafter accept
#: asymptote): the n-gram retrieval drafter (lookahead-style accept
#: lengths of ~4-5 on repetitive math/code) vs the spot-trained EAGLE.
MODEL_FREE_QUALITY = 0.6
ADAPTIVE_QUALITY = 1.0


class _AdaptiveSdSystem(RlSystem):
    """Shared plumbing for systems whose rollouts use adaptive SD."""

    sd_config: AdaptiveSdConfig

    def rollout_backend(
        self,
        drafter: Drafter,
        child_mode: str = "sample",
        max_batch_size: Optional[int] = None,
        manager: Optional[AdaptiveSdManager] = None,
    ) -> AdaptiveSpeculativeRollout:
        """Algorithmic rollout backend mirroring this system's SD policy.

        The returned backend runs the batched continuous-batching engine
        under an :class:`~repro.rollout.adaptive.AdaptiveSdManager` built
        from the same configuration the cluster simulator uses, so the
        simulated elastic-activation behaviour and the real token-level
        engine share one source of truth.

        Args:
            drafter: the draft model to speculate with (the n-gram
                retrieval drafter for TLT-Base, spot-trained EAGLE for
                full TLT).
            child_mode: tree child expansion mode (``sample`` = lossless).
            max_batch_size: live-slot capacity of the scheduler.
            manager: reuse an existing manager (keeps bandit state across
                RL steps); one is built from ``self.sd_config`` when
                omitted.
        """
        return AdaptiveSpeculativeRollout(
            drafter,
            sd_config=self.sd_config,
            manager=manager,
            child_mode=child_mode,
            max_batch_size=max_batch_size,
        )

    def serving_frontend(
        self,
        target: TinyLM,
        drafter: Drafter,
        num_workers: int = 2,
        max_batch_size: Optional[int] = 8,
        temperature: float = 0.8,
        child_mode: str = "sample",
        use_tree: bool = True,
        dispatch: Optional[DispatchPolicy] = None,
        work_stealing: bool = True,
        share_bandit: bool = True,
    ) -> ServingEngine:
        """Online serving front-end mirroring this system's SD policy.

        Builds one :class:`~repro.rollout.adaptive.AdaptiveSdManager`
        per worker from ``self.sd_config`` — the same elastic threshold
        and strategy pool the cluster simulator uses — so each worker's
        SD/vanilla decision is driven by *its own* live-batch size as the
        dispatcher shapes it.  With ``share_bandit`` the workers feed one
        BEG-MAB selector, pooling accept-length measurements across the
        pool (more traffic, faster convergence) while keeping elastic
        activation state per worker.

        Args:
            target: the target model served by every worker.
            drafter: the draft model (spot-trained EAGLE for full TLT,
                the n-gram retrieval drafter for TLT-Base).
            num_workers: decode workers in the pool.
            max_batch_size: per-worker live-slot capacity.
            temperature: sampling temperature.
            child_mode: tree child expansion mode (``sample`` = lossless).
            use_tree: tree-based drafting (default) or linear chains.
            dispatch: routing policy (round-robin when omitted).
            work_stealing: rebalance queued requests between cycles.
            share_bandit: share one strategy selector across workers.
        """
        managers: List[AdaptiveSdManager] = []
        selector = self.sd_config.selector
        for _ in range(num_workers):
            manager = AdaptiveSdManager(
                replace(self.sd_config, selector=selector)
            )
            if share_bandit and selector is None:
                selector = manager.selector
            managers.append(manager)
        return ServingEngine(
            target,
            drafter,
            num_workers=num_workers,
            strategy=None,
            sd_managers=managers,
            temperature=temperature,
            child_mode=child_mode,  # type: ignore[arg-type]
            use_tree=use_tree,
            max_batch_size=max_batch_size,
            dispatch=dispatch,
            work_stealing=work_stealing,
        )

    def publish_drafter(
        self,
        frontend: ServingEngine,
        spot_trainer: "SpotTrainer",
    ) -> Drafter:
        """Deploy the spot trainer's refreshed weights with zero downtime.

        This is the paper's adaptive-drafter loop closed over a *live*
        pool: the spot trainer has been improving the EAGLE drafter
        inside long-tail bubbles; publishing snapshots its current
        weights (training keeps mutating the original) and rolls the
        snapshot across the front-end's workers one per tick via the
        engine control plane — each worker swaps at a cycle boundary,
        so no in-flight request anywhere is dropped or stalled.

        Returns:
            The published snapshot (the drafter instance now rolling
            across the pool).
        """
        refreshed = spot_trainer.snapshot_drafter()
        frontend.swap_drafter(refreshed)
        return refreshed


class TltBaseSystem(_AdaptiveSdSystem):
    """TLT with the model-free drafter only (paper's TLT-Base)."""

    name = "TLT-Base"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        activation_threshold: int = 32,
        transition_overhead_s: float = 10.0,
    ) -> None:
        super().__init__(model, cluster)
        self.sd_config = AdaptiveSdConfig(
            activation_threshold=activation_threshold,
            acceptance=ParametricAcceptance(
                drafter_quality=MODEL_FREE_QUALITY
            ),
        )
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=self.sd_config,
            spot_training=False,
            transition_overhead_s=transition_overhead_s,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={"idle_gpu_s": result.idle_gpu_s},
        )


class TltSystem(_AdaptiveSdSystem):
    """Full TLT: adaptive learned drafter + spot training in bubbles."""

    name = "TLT"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        activation_threshold: int = 32,
        transition_overhead_s: float = 10.0,
        extra_overhead_fraction: float = 0.008,
        drafter_quality: float = ADAPTIVE_QUALITY,
    ) -> None:
        super().__init__(model, cluster)
        self.sd_config = AdaptiveSdConfig(
            activation_threshold=activation_threshold,
            acceptance=ParametricAcceptance(
                drafter_quality=drafter_quality
            ),
        )
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=self.sd_config,
            spot_training=True,
            transition_overhead_s=transition_overhead_s,
            extra_overhead_fraction=extra_overhead_fraction,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={
                "idle_gpu_s": result.idle_gpu_s,
                "drafter_train_gpu_s": result.drafter_train_gpu_s,
            },
        )
