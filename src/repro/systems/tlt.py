"""TLT and TLT-Base system models.

``TLT-Base`` is the paper's ablation: the adaptive rollout engine with the
model-free n-gram drafter only (no learned drafter, no spot training).
``TLT`` is the full system: a continuously adapted EAGLE drafter whose
freshness is maintained by spot training inside the long-tail bubbles,
plus the <1% bookkeeping overhead for drafter weight updates and
optimizer offloading the paper measures.

Each system carries its rollout policy in two interchangeable forms: the
roofline-calibrated cluster simulator (:meth:`~RlSystem.simulate_step`)
and, via :meth:`rollout_backend`, the *algorithmic* continuous-batching
engine — an :class:`~repro.rl.rollout_backends.AdaptiveSpeculativeRollout`
built from the same :class:`~repro.rollout.adaptive.AdaptiveSdConfig`, so
the elastic threshold and strategy pool that shape the simulated timeline
also drive real batched token generation on the TinyLM substrate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, TYPE_CHECKING, Union

import numpy as np

from repro.cluster.simulator import (
    ClusterSpec,
    RlStepSimulator,
    StepWorkload,
)
from repro.drafter.base import Drafter

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.autoscale.controller import Autoscaler
    from repro.autoscale.policy import ScalingPolicy
    from repro.autoscale.signals import SignalAggregator
    from repro.rl.trainer import RlConfig
    from repro.spot.trainer import SpotTrainer
    from repro.workload.prompts import Task
from repro.fleet.engine import FleetEngine
from repro.fleet.router import RoutingPolicy
from repro.hardware.gpus import ModelSpec
from repro.llm.model import TinyLM
from repro.rl.rollout_backends import AdaptiveSpeculativeRollout
from repro.rl.serving_backend import ColocatedLoop, ServingRolloutBackend
from repro.serving.dispatch import (
    DispatchPolicy,
    PreemptionPolicy,
    SloPreemption,
)
from repro.rollout.acceptance import ParametricAcceptance
from repro.rollout.adaptive import AdaptiveSdConfig, AdaptiveSdManager
from repro.serving.frontend import ServingEngine
from repro.specdec.control import AdmissionPolicy
from repro.specdec.strategy import SdStrategy
from repro.systems.base import RlSystem, SystemStepReport

#: Calibrated drafter qualities (fractions of the fresh-drafter accept
#: asymptote): the n-gram retrieval drafter (lookahead-style accept
#: lengths of ~4-5 on repetitive math/code) vs the spot-trained EAGLE.
MODEL_FREE_QUALITY = 0.6
ADAPTIVE_QUALITY = 1.0


class _AdaptiveSdSystem(RlSystem):
    """Shared plumbing for systems whose rollouts use adaptive SD."""

    sd_config: AdaptiveSdConfig

    def rollout_backend(
        self,
        drafter: Drafter,
        child_mode: str = "sample",
        max_batch_size: Optional[int] = None,
        manager: Optional[AdaptiveSdManager] = None,
    ) -> AdaptiveSpeculativeRollout:
        """Algorithmic rollout backend mirroring this system's SD policy.

        The returned backend runs the batched continuous-batching engine
        under an :class:`~repro.rollout.adaptive.AdaptiveSdManager` built
        from the same configuration the cluster simulator uses, so the
        simulated elastic-activation behaviour and the real token-level
        engine share one source of truth.

        Args:
            drafter: the draft model to speculate with (the n-gram
                retrieval drafter for TLT-Base, spot-trained EAGLE for
                full TLT).
            child_mode: tree child expansion mode (``sample`` = lossless).
            max_batch_size: live-slot capacity of the scheduler.
            manager: reuse an existing manager (keeps bandit state across
                RL steps); one is built from ``self.sd_config`` when
                omitted.
        """
        return AdaptiveSpeculativeRollout(
            drafter,
            sd_config=self.sd_config,
            manager=manager,
            child_mode=child_mode,
            max_batch_size=max_batch_size,
        )

    def serving_frontend(
        self,
        target: TinyLM,
        drafter: Drafter,
        num_workers: int = 2,
        max_batch_size: Optional[int] = 8,
        temperature: float = 0.8,
        child_mode: str = "sample",
        use_tree: bool = True,
        dispatch: Optional[DispatchPolicy] = None,
        preemption: Optional[PreemptionPolicy] = None,
        work_stealing: bool = True,
        share_bandit: bool = True,
        group_affinity: bool = False,
        strategy: Optional[SdStrategy] = None,
        admission: Optional[AdmissionPolicy] = None,
        kv_cache_tokens: Optional[int] = None,
        kv_cache_block_size: Optional[int] = 8,
        kv_cache_cold_tokens: int = 0,
    ) -> ServingEngine:
        """Online serving front-end mirroring this system's SD policy.

        Builds one :class:`~repro.rollout.adaptive.AdaptiveSdManager`
        per worker from ``self.sd_config`` — the same elastic threshold
        and strategy pool the cluster simulator uses — so each worker's
        SD/vanilla decision is driven by *its own* live-batch size as the
        dispatcher shapes it.  With ``share_bandit`` the workers feed one
        BEG-MAB selector, pooling accept-length measurements across the
        pool (more traffic, faster convergence) while keeping elastic
        activation state per worker.

        Args:
            target: the target model served by every worker.
            drafter: the draft model (spot-trained EAGLE for full TLT,
                the n-gram retrieval drafter for TLT-Base).
            num_workers: decode workers in the pool.
            max_batch_size: per-worker live-slot capacity.
            temperature: sampling temperature.
            child_mode: tree child expansion mode (``sample`` = lossless).
            use_tree: tree-based drafting (default) or linear chains.
            dispatch: routing policy (round-robin when omitted).
            preemption: optional policy parking live low-urgency
                requests for urgent arrivals (None = never preempt).
            work_stealing: rebalance queued requests between cycles.
            share_bandit: share one strategy selector across workers.
            group_affinity: co-locate requests sharing a group tag.
            strategy: static SD configuration; when set, per-worker
                adaptive managers are NOT built and every cycle runs
                this strategy (what byte-identity guarantees need —
                elastic SD legitimately depends on the live batch).
            admission: pluggable admission policy shared by every
                worker's scheduler
                (:class:`~repro.specdec.control.PrefixAwareAdmission`
                co-admits shared-prefix requests; FIFO when omitted).
            kv_cache_tokens: per-worker prefix-cache capacity in
                prompt tokens (no cache when omitted).
            kv_cache_block_size: tokens per KV block (None = exact-
                match mode, no partial-prefix reuse).
            kv_cache_cold_tokens: COLD demotion-tier budget per worker
                cache (0 = evict outright).
        """
        managers: List[AdaptiveSdManager] = []
        if strategy is None:
            selector = self.sd_config.selector
            for _ in range(num_workers):
                manager = AdaptiveSdManager(
                    replace(self.sd_config, selector=selector)
                )
                if share_bandit and selector is None:
                    selector = manager.selector
                managers.append(manager)
        return ServingEngine(
            target,
            drafter,
            num_workers=num_workers,
            strategy=strategy,
            sd_managers=managers or None,
            temperature=temperature,
            child_mode=child_mode,  # type: ignore[arg-type]
            use_tree=use_tree,
            max_batch_size=max_batch_size,
            dispatch=dispatch,
            preemption=preemption,
            work_stealing=work_stealing,
            group_affinity=group_affinity,
            admission=admission,
            kv_cache_tokens=kv_cache_tokens,
            kv_cache_block_size=kv_cache_block_size,
            kv_cache_cold_tokens=kv_cache_cold_tokens,
        )

    def fleet_frontend(
        self,
        target: TinyLM,
        drafter: Drafter,
        num_replicas: int = 2,
        num_workers: int = 2,
        routing: Optional[RoutingPolicy] = None,
        warmup_ticks: int = 0,
        **pool_kwargs,
    ) -> FleetEngine:
        """A sharded fleet of :meth:`serving_frontend` replicas.

        Builds ``num_replicas`` identical pools (each configured exactly
        as :meth:`serving_frontend` would, with ``pool_kwargs`` passed
        through) and puts them behind a fleet router — prefix-aware
        consistent hashing with least-loaded spill when ``routing`` is
        omitted.  All replicas share one
        :class:`~repro.serving.request.RequestIdAllocator`, so ids are
        fleet-unique by construction.

        For the byte-identity determinism contract, pass a static
        ``strategy=`` in ``pool_kwargs`` (adaptive managers legitimately
        depend on the live batch each replica sees).

        Args:
            target: the target model served by every worker.
            drafter: the draft model shared by every replica.
            num_replicas: serving pools in the fleet.
            num_workers: decode workers per pool.
            routing: fleet routing policy (prefix-hash when omitted).
            warmup_ticks: JOINING warm-up before a replica activates.
            **pool_kwargs: forwarded to :meth:`serving_frontend` for
                each replica.
        """
        replicas = [
            self.serving_frontend(
                target, drafter, num_workers=num_workers, **pool_kwargs
            )
            for _ in range(num_replicas)
        ]
        return FleetEngine(
            replicas, routing=routing, warmup_ticks=warmup_ticks
        )

    def autoscaled_fleet(
        self,
        target: TinyLM,
        drafter: Drafter,
        num_replicas: int = 1,
        num_workers: int = 2,
        routing: Optional[RoutingPolicy] = None,
        warmup_ticks: int = 2,
        policy: Optional["ScalingPolicy"] = None,
        signals: Optional["SignalAggregator"] = None,
        **pool_kwargs,
    ) -> "Autoscaler":
        """An elastic fleet: :meth:`fleet_frontend` plus its autoscaler.

        Builds the fleet exactly as :meth:`fleet_frontend` would, then
        wires an :class:`~repro.autoscale.controller.Autoscaler` whose
        ``replica_factory`` builds scale-out pools with the SAME
        configuration (same model, drafter, worker count, and
        ``pool_kwargs``) — an elastic fleet is homogeneous by
        construction.  Drive it from the run loop::

            scaler = system.autoscaled_fleet(target, drafter)
            report = scaler.fleet.run(trace, on_tick=scaler.on_tick)

        Args:
            target: the target model served by every worker.
            drafter: the draft model shared by every replica.
            num_replicas: starting fleet size.
            num_workers: decode workers per pool.
            routing: fleet routing policy (prefix-hash when omitted).
            warmup_ticks: JOINING warm-up before a replica activates
                (scale-out capacity arrives after this many ticks).
            policy: scaling policy (the autoscaler's default
                :class:`~repro.autoscale.policy.HysteresisPolicy`
                when omitted).
            signals: signal aggregator (a default one when omitted).
            **pool_kwargs: forwarded to :meth:`serving_frontend` for
                every replica, initial and scaled-out alike.

        Returns:
            The :class:`~repro.autoscale.controller.Autoscaler`; its
            ``fleet`` attribute is the engine to run.
        """
        from repro.autoscale.controller import Autoscaler

        fleet = self.fleet_frontend(
            target,
            drafter,
            num_replicas=num_replicas,
            num_workers=num_workers,
            routing=routing,
            warmup_ticks=warmup_ticks,
            **pool_kwargs,
        )
        return Autoscaler(
            fleet,
            replica_factory=lambda: self.serving_frontend(
                target, drafter, num_workers=num_workers, **pool_kwargs
            ),
            policy=policy,
            signals=signals,
        )

    def publish_drafter(
        self,
        frontend: Union[ServingEngine, FleetEngine],
        spot_trainer: "SpotTrainer",
    ) -> Drafter:
        """Deploy the spot trainer's refreshed weights with zero downtime.

        This is the paper's adaptive-drafter loop closed over a *live*
        pool: the spot trainer has been improving the EAGLE drafter
        inside long-tail bubbles; publishing snapshots its current
        weights (training keeps mutating the original) and rolls the
        snapshot across the front-end's workers one per tick via the
        engine control plane — each worker swaps at a cycle boundary,
        so no in-flight request anywhere is dropped or stalled.

        A :class:`~repro.fleet.engine.FleetEngine` is accepted wherever
        a pool is: the fleet rolls the snapshot across its replicas one
        at a time (each replica rolling its own workers one per tick),
        so a whole sharded tier upgrades with zero downtime.

        Returns:
            The published snapshot (the drafter instance now rolling
            across the pool or fleet).
        """
        refreshed = spot_trainer.snapshot_drafter()
        frontend.swap_drafter(refreshed)
        return refreshed

    def colocated_system(
        self,
        policy: TinyLM,
        drafter: Drafter,
        task: "Task",
        rl_config: "RlConfig",
        num_workers: int = 2,
        max_batch_size: Optional[int] = 4,
        strategy: Optional[SdStrategy] = None,
        child_mode: str = "sample",
        use_tree: bool = True,
        dispatch: Optional[DispatchPolicy] = None,
        preemption: Optional[PreemptionPolicy] = None,
        work_stealing: bool = True,
        group_affinity: bool = True,
        admission: Optional[AdmissionPolicy] = None,
        kv_cache_tokens: Optional[int] = None,
        spot_trainer: Optional["SpotTrainer"] = None,
        spot_updates_per_round: int = 20,
        rl_rng: Optional[np.random.Generator] = None,
        spot_rng: Optional[np.random.Generator] = None,
    ) -> ColocatedLoop:
        """Wire serving, RL training, and drafter refresh into one loop.

        The ROADMAP's north-star scenario: ONE worker pool serves
        online traffic *and* generates the trainer's GRPO rollouts.
        Rollout groups enter as group-tagged BATCH requests, the
        :class:`~repro.serving.dispatch.SloPreemption` policy (the
        default) parks them byte-identically whenever interactive
        arrivals need slots, and — when a spot trainer is attached —
        each round ends with :meth:`publish_drafter` rolling the
        refreshed EAGLE weights across the pool with zero downtime.

        Args:
            policy: the model being RL-trained; the pool serves the
                SAME object, so in-place updates reach every worker.
            drafter: the pool's initial drafter.
            task: prompt generator + verifier for the RL loop.
            rl_config: RL hyper-parameters (the pool inherits its
                rollout temperature).
            num_workers / max_batch_size: pool shape.
            strategy: static SD configuration; when None, per-worker
                adaptive managers are built from ``self.sd_config``
                (elastic SD — rollout outputs then legitimately depend
                on the live batch, so use a static strategy when you
                need byte-identity against a dedicated pool).
            child_mode / use_tree: drafting configuration.
            dispatch: routing policy (round-robin when omitted).
            preemption: defaults to :class:`SloPreemption` — the
                policy that makes co-location safe for interactive
                latency.
            work_stealing: rebalance queued requests between cycles.
            group_affinity: co-locate each GRPO group on one worker
                (on by default — groups share prompts by construction).
            admission: pluggable admission policy
                (:class:`~repro.specdec.control.PrefixAwareAdmission`
                + ``kv_cache_tokens`` make each co-located GRPO group
                pay ONE prefill launch instead of one per member).
            kv_cache_tokens: per-worker prefix-cache capacity in
                prompt tokens (no cache when omitted).
            spot_trainer: optional spot drafter trainer closing the
                refresh loop.
            spot_updates_per_round: drafter update budget per round.
            rl_rng / spot_rng: generators for the trainer and the
                spot-buffer sampling.

        Returns:
            A ready-to-run :class:`~repro.rl.serving_backend.
            ColocatedLoop`; submit interactive traffic to its
            ``frontend`` at any point.
        """
        from repro.rl.trainer import RlTrainer

        frontend = self.serving_frontend(
            policy,
            drafter,
            num_workers=num_workers,
            max_batch_size=max_batch_size,
            temperature=rl_config.temperature,
            child_mode=child_mode,
            use_tree=use_tree,
            dispatch=dispatch,
            preemption=(
                preemption if preemption is not None
                else SloPreemption()
            ),
            work_stealing=work_stealing,
            group_affinity=group_affinity,
            strategy=strategy,
            admission=admission,
            kv_cache_tokens=kv_cache_tokens,
        )
        backend = ServingRolloutBackend(
            frontend, group_size=rl_config.group_size
        )
        trainer = RlTrainer(
            policy,
            task,
            rl_config,
            backend=backend,
            rng=rl_rng,
        )
        publish = None
        if spot_trainer is not None:
            publish = lambda: self.publish_drafter(  # noqa: E731
                frontend, spot_trainer
            )
        return ColocatedLoop(
            frontend,
            trainer,
            spot=spot_trainer,
            publish=publish,
            spot_updates_per_round=spot_updates_per_round,
            spot_rng=spot_rng,
        )


class TltBaseSystem(_AdaptiveSdSystem):
    """TLT with the model-free drafter only (paper's TLT-Base)."""

    name = "TLT-Base"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        activation_threshold: int = 32,
        transition_overhead_s: float = 10.0,
    ) -> None:
        super().__init__(model, cluster)
        self.sd_config = AdaptiveSdConfig(
            activation_threshold=activation_threshold,
            acceptance=ParametricAcceptance(
                drafter_quality=MODEL_FREE_QUALITY
            ),
        )
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=self.sd_config,
            spot_training=False,
            transition_overhead_s=transition_overhead_s,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={"idle_gpu_s": result.idle_gpu_s},
        )


class TltSystem(_AdaptiveSdSystem):
    """Full TLT: adaptive learned drafter + spot training in bubbles."""

    name = "TLT"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        activation_threshold: int = 32,
        transition_overhead_s: float = 10.0,
        extra_overhead_fraction: float = 0.008,
        drafter_quality: float = ADAPTIVE_QUALITY,
    ) -> None:
        super().__init__(model, cluster)
        self.sd_config = AdaptiveSdConfig(
            activation_threshold=activation_threshold,
            acceptance=ParametricAcceptance(
                drafter_quality=drafter_quality
            ),
        )
        self._simulator = RlStepSimulator(
            model=model,
            cluster=cluster,
            sd_config=self.sd_config,
            spot_training=True,
            transition_overhead_s=transition_overhead_s,
            extra_overhead_fraction=extra_overhead_fraction,
        )

    def simulate_step(self, workload: StepWorkload) -> SystemStepReport:
        result = self._simulator.simulate_step(workload)
        return self._report_from(
            self.name,
            result,
            extra={
                "idle_gpu_s": result.idle_gpu_s,
                "drafter_train_gpu_s": result.drafter_train_gpu_s,
            },
        )
