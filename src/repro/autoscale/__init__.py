"""Elastic autoscaling: event-driven fleet scaling with hysteresis.

The fleet tier (:mod:`repro.fleet`) gave the serving stack membership
mechanics — replicas join, drain, and retire with zero dropped
requests.  This package adds the *control loop* that decides WHEN:

* :mod:`repro.autoscale.signals` — the sensor layer.
  :class:`SignalAggregator` folds the fleet's merged lifecycle event
  stream, router spill counters, and scheduler queue depths into one
  windowed :class:`PressureSnapshot` per tick (queue EWMA, preemption
  and spill rates, backlog-token slope).
* :mod:`repro.autoscale.policy` — the brain.  A
  :class:`ScalingPolicy` maps snapshots to typed
  :class:`ScaleDecision`\\ s; the default :class:`HysteresisPolicy`
  uses high/low watermarks with asymmetric cooldowns (fast out, slow
  in) so oscillating load cannot thrash membership, and falls back to
  elastic-SD threshold nudges at the replica bounds.
* :mod:`repro.autoscale.controller` — the hands.
  :class:`Autoscaler` executes decisions against the
  :class:`~repro.fleet.engine.FleetEngine` (warm scale-out, zero-drop
  scale-in of the least-prefix-valuable replica, intra-pool SD
  nudges), logging every action as an auditable :class:`ScaleEvent`
  with its triggering snapshot and ring-movement cost.

Wire-up is one line on the run loop::

    scaler = Autoscaler(fleet, replica_factory=build_pool)
    report = fleet.run(trace, on_tick=scaler.on_tick)

The scenario zoo (:mod:`repro.workload.scenarios`) provides the load
shapes — diurnal, flash-crowd, adversarial long-tail — the
autoscaling scoreboard (``benchmarks/test_autoscale.py``) judges
policies on: SLO attainment at what cost in worker-cycles.
"""

from repro.autoscale.controller import Autoscaler, ScaleEvent
from repro.autoscale.policy import (
    HysteresisPolicy,
    ScaleAction,
    ScaleDecision,
    ScalingPolicy,
)
from repro.autoscale.signals import PressureSnapshot, SignalAggregator

__all__ = [
    "Autoscaler",
    "HysteresisPolicy",
    "PressureSnapshot",
    "ScaleAction",
    "ScaleDecision",
    "ScaleEvent",
    "ScalingPolicy",
    "SignalAggregator",
]
