"""Scaling policies: pressure snapshots in, typed decisions out.

A policy is a pure function of the
:class:`~repro.autoscale.signals.PressureSnapshot` stream — it never
touches the fleet.  That split is what makes policies testable: the
fuzz suite drives :class:`HysteresisPolicy` with thousands of random
pressure traces and checks its invariants (no decision inside a
cooldown, bounds always respected, never scale in under a warm-up)
without building a single replica.

The default :class:`HysteresisPolicy` is a watermark controller with
**asymmetric** cooldowns: scaling out is cheap to get wrong (an extra
replica idles, then drains) while scaling in is expensive to get wrong
(a drain forfeits cache warmth and migrates queued work), so the
scale-out cooldown is short and the scale-in cooldown long.  Between
the watermarks it holds — the hysteresis band that keeps an
oscillating load from thrashing membership.  At the replica bounds it
falls back to **intra-pool actuation**: when pinned at ``max_replicas``
under high pressure it asks for the elastic-SD activation threshold to
be nudged down (spend drafting capacity on serving), and at
``min_replicas`` under low pressure nudged back up (idle slots return
to speculation) — capacity borrowed inside the pool when none can be
added beside it.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.autoscale.signals import PressureSnapshot


class ScaleAction(enum.Enum):
    """What an autoscaling decision asks the controller to do."""

    #: No actuation this tick.
    HOLD = "hold"
    #: Add ``magnitude`` replicas (warm up, then join the ring).
    SCALE_OUT = "scale-out"
    #: Drain ``magnitude`` replicas (zero-drop retirement).
    SCALE_IN = "scale-in"
    #: Raise the elastic-SD activation threshold (more speculation).
    NUDGE_SD_UP = "nudge-sd-up"
    #: Lower the elastic-SD activation threshold (more serving).
    NUDGE_SD_DOWN = "nudge-sd-down"


@dataclass(frozen=True)
class ScaleDecision:
    """One policy verdict.

    Attributes:
        action: what to do (:class:`ScaleAction`).
        magnitude: how many replicas (or threshold steps) — 0 for HOLD.
        reason: human-readable trigger, kept verbatim in the audit
            trail (e.g. ``"pressure 1.84 > high watermark 1.25"``).
    """

    action: ScaleAction
    magnitude: int = 0
    reason: str = ""

    @property
    def is_hold(self) -> bool:
        """Whether this decision actuates nothing."""
        return self.action is ScaleAction.HOLD


#: The decision every policy returns when nothing should happen.
HOLD = ScaleDecision(ScaleAction.HOLD, 0, "within band")


class ScalingPolicy(abc.ABC):
    """Maps pressure snapshots to scale decisions (fleet-blind)."""

    #: Label used in audit trails and benchmark tables.
    name: str = "scaling-policy"

    @abc.abstractmethod
    def decide(self, snapshot: PressureSnapshot) -> ScaleDecision:
        """Return the decision for one observation tick.

        Called exactly once per fleet tick with that tick's snapshot;
        implementations may keep internal state (cooldown clocks) keyed
        on the call sequence.
        """


class HysteresisPolicy(ScalingPolicy):
    """Watermark scaling with asymmetric cooldowns and bound nudges.

    Args:
        high_watermark: pressure above which the fleet scales out.
        low_watermark: pressure below which the fleet scales in; must
            leave a band (``low < high``) or membership thrashes.
        min_replicas / max_replicas: inclusive bounds on non-retired
            (ACTIVE + JOINING) replicas.
        out_cooldown: ticks after the last scaling decision (out OR
            in) before another scale-out (short — over-provisioning is
            cheap to undo).
        in_cooldown: ticks after the last scaling decision before a
            scale-in (long — drains forfeit cache warmth, so the low
            pressure must persist well past the last actuation).
        max_step: most replicas one decision may add or drain.
        surge_factor: pressure beyond ``surge_factor × high_watermark``
            scales out by up to ``max_step`` at once (a flash crowd
            should not be answered one replica per cooldown).
        nudge_cooldown: ticks between SD-threshold nudges at the
            bounds.
    """

    name = "hysteresis"

    def __init__(
        self,
        high_watermark: float = 1.25,
        low_watermark: float = 0.45,
        min_replicas: int = 1,
        max_replicas: int = 8,
        out_cooldown: int = 3,
        in_cooldown: int = 12,
        max_step: int = 2,
        surge_factor: float = 2.0,
        nudge_cooldown: int = 8,
    ) -> None:
        if not 0.0 <= low_watermark < high_watermark:
            raise ConfigError(
                f"need 0 <= low_watermark < high_watermark, got "
                f"low={low_watermark} high={high_watermark}"
            )
        if min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be >= 1, got {min_replicas}"
            )
        if max_replicas < min_replicas:
            raise ConfigError(
                f"max_replicas ({max_replicas}) must be >= "
                f"min_replicas ({min_replicas})"
            )
        if out_cooldown < 0 or in_cooldown < 0 or nudge_cooldown < 0:
            raise ConfigError("cooldowns must be >= 0")
        if max_step < 1:
            raise ConfigError(f"max_step must be >= 1, got {max_step}")
        if surge_factor < 1.0:
            raise ConfigError(
                f"surge_factor must be >= 1.0, got {surge_factor}"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.out_cooldown = out_cooldown
        self.in_cooldown = in_cooldown
        self.max_step = max_step
        self.surge_factor = surge_factor
        self.nudge_cooldown = nudge_cooldown
        self._tick = -1
        self._last_scale: int = -(10**9)
        self._last_nudge: int = -(10**9)

    # -- decision ----------------------------------------------------------

    def decide(self, snapshot: PressureSnapshot) -> ScaleDecision:
        self._tick += 1
        pressure = snapshot.pressure
        population = (
            snapshot.active_replicas + snapshot.joining_replicas
        )
        since_scale = self._tick - self._last_scale

        if pressure > self.high_watermark:
            if population < self.max_replicas:
                if since_scale < self.out_cooldown:
                    return HOLD
                magnitude = self._out_magnitude(pressure, population)
                self._last_scale = self._tick
                return ScaleDecision(
                    ScaleAction.SCALE_OUT,
                    magnitude,
                    f"pressure {pressure:.2f} > high watermark "
                    f"{self.high_watermark:.2f}",
                )
            return self._nudge(
                ScaleAction.NUDGE_SD_DOWN,
                f"pressure {pressure:.2f} at max_replicas "
                f"{self.max_replicas}: borrow drafting slots",
            )

        if pressure < self.low_watermark:
            if snapshot.joining_replicas > 0:
                # Capacity just added is still warming up; judging it
                # idle would cancel the scale-out it came from.
                return HOLD
            if snapshot.backlog_slope > 0:
                # Backlog still growing: the lull is queue shadowing,
                # not spare capacity.
                return HOLD
            if population > self.min_replicas:
                if since_scale < self.in_cooldown:
                    return HOLD
                magnitude = min(
                    self.max_step, population - self.min_replicas
                )
                self._last_scale = self._tick
                return ScaleDecision(
                    ScaleAction.SCALE_IN,
                    magnitude,
                    f"pressure {pressure:.2f} < low watermark "
                    f"{self.low_watermark:.2f}",
                )
            return self._nudge(
                ScaleAction.NUDGE_SD_UP,
                f"pressure {pressure:.2f} at min_replicas "
                f"{self.min_replicas}: return slots to speculation",
            )

        return HOLD

    # -- internals ---------------------------------------------------------

    def _out_magnitude(self, pressure: float, population: int) -> int:
        """One replica normally; up to ``max_step`` under a surge."""
        step = 1
        if pressure > self.surge_factor * self.high_watermark:
            step = self.max_step
        return min(step, self.max_replicas - population)

    def _nudge(
        self, action: ScaleAction, reason: str
    ) -> ScaleDecision:
        if self._tick - self._last_nudge < self.nudge_cooldown:
            return HOLD
        self._last_nudge = self._tick
        return ScaleDecision(action, 1, reason)
