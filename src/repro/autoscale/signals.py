"""Fleet pressure signals: the autoscaler's sensor layer.

Scaling decisions must be driven by what the fleet is *experiencing*,
not by post-hoc reports: a flash crowd shows up as queued arrivals,
preemption events, and router spills minutes before it shows up in a
latency percentile.  :class:`SignalAggregator` folds three live sources
into one windowed :class:`PressureSnapshot` per fleet tick:

* the fleet's merged lifecycle stream
  (:meth:`~repro.fleet.engine.FleetEngine.subscribe`) — PREEMPTED
  events are counted per tick into a preemption rate;
* the router's spill counter
  (:attr:`~repro.fleet.router.RoutingPolicy.spills`) — hot-spot
  shedding is the earliest sign the hashed placement is saturating;
* the replicas' scheduler surfaces — queued requests, live slots, and
  predicted backlog tokens, summed over non-retired replicas.

Instantaneous readings are noisy (one admission wave can empty a
queue), so the aggregator keeps exponentially-weighted moving averages
(queue depth, preemption rate, spill rate) and a finite-difference
**backlog slope** over a sliding window — the signal that separates "a
burst that is already draining" from "a backlog that is still
growing".  The derived :attr:`PressureSnapshot.pressure` ratio
(demand over provisioned slots) is what the default
:class:`~repro.autoscale.policy.HysteresisPolicy` thresholds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import ConfigError
from repro.fleet.engine import FleetEngine
from repro.fleet.lifecycle import ReplicaState
from repro.specdec.control import RequestEvent, RequestEventKind


@dataclass(frozen=True)
class PressureSnapshot:
    """One tick's windowed view of fleet pressure.

    Attributes:
        time: fleet virtual time of the sample.
        queue_depth: requests queued on workers right now (fleet-wide).
        queue_ewma: exponentially-smoothed queue depth.
        live_slots: requests decoding in live slots right now.
        slot_capacity: live slots provisioned across ACTIVE + JOINING
            replicas (JOINING counts — that capacity is imminent, and
            ignoring it would re-trigger scale-out during warm-up).
        backlog_tokens: predicted outstanding decode tokens fleet-wide.
        backlog_slope: backlog-token change per tick over the sliding
            window (positive = demand still outrunning capacity).
        preemption_rate: smoothed PREEMPTED events per tick.
        spill_rate: smoothed router spills per tick.
        active_replicas: replicas currently ACTIVE.
        joining_replicas: replicas warming up (JOINING).
        draining_replicas: replicas draining toward retirement.
    """

    time: float
    queue_depth: int
    queue_ewma: float
    live_slots: int
    slot_capacity: int
    backlog_tokens: int
    backlog_slope: float
    preemption_rate: float
    spill_rate: float
    active_replicas: int
    joining_replicas: int
    draining_replicas: int

    @property
    def pressure(self) -> float:
        """Demand over provisioned capacity (the default policy metric).

        Occupied live slots plus the smoothed queue, per provisioned
        slot: ~1.0 means the fleet is exactly full, well above 1.0
        means arrivals are stacking up behind full workers, and well
        below 1.0 means slots are idling.
        """
        return (self.live_slots + self.queue_ewma) / max(
            self.slot_capacity, 1
        )


class SignalAggregator:
    """Folds fleet event streams and load surfaces into snapshots.

    Attach once (:meth:`attach`); the single fleet-level subscription
    covers replicas added later, so membership changes never leave the
    sensor blind.  Call :meth:`observe` once per fleet tick (the
    autoscaler's ``on_tick`` does) to fold that tick's event counts
    and load readings into a new :class:`PressureSnapshot`.

    Args:
        alpha: EWMA smoothing factor in ``(0, 1]`` — the weight of the
            newest sample (1.0 = no smoothing).
        window: sliding-window length in ticks for the backlog slope.
    """

    def __init__(self, alpha: float = 0.5, window: int = 8) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(
                f"alpha must be in (0, 1], got {alpha}"
            )
        if window < 2:
            raise ConfigError(f"window must be >= 2, got {window}")
        self.alpha = alpha
        self.window = window
        self._fleet: Optional[FleetEngine] = None
        self._preemptions_pending = 0
        self._spills_seen = 0
        self._queue_ewma = 0.0
        self._preemption_ewma = 0.0
        self._spill_ewma = 0.0
        self._backlog_window: Deque[int] = deque(maxlen=window)
        #: Snapshot history in observation order (the audit trail
        #: scale events reference by value).
        self.snapshots: list = []

    # -- wiring ------------------------------------------------------------

    def attach(self, fleet: FleetEngine) -> None:
        """Subscribe to ``fleet``'s merged event stream (idempotent
        per fleet; attaching to a second fleet raises)."""
        if self._fleet is fleet:
            return
        if self._fleet is not None:
            raise ConfigError(
                "SignalAggregator is already attached to a fleet; "
                "build one aggregator per fleet"
            )
        self._fleet = fleet
        self._spills_seen = fleet.routing.spills
        fleet.subscribe(self._on_event)

    def _on_event(self, event: RequestEvent) -> None:
        if event.kind is RequestEventKind.PREEMPTED:
            self._preemptions_pending += 1

    # -- sampling ----------------------------------------------------------

    def observe(self, fleet: FleetEngine) -> PressureSnapshot:
        """Fold the tick's deltas into a snapshot (one call per tick)."""
        if self._fleet is None:
            self.attach(fleet)
        elif fleet is not self._fleet:
            raise ConfigError(
                "observe() called with a different fleet than the one "
                "attached"
            )
        queue_depth = 0
        live_slots = 0
        slot_capacity = 0
        backlog_tokens = 0
        active = joining = draining = 0
        for replica in fleet.replicas:
            state = replica.state
            if state is ReplicaState.RETIRED:
                continue
            if state is ReplicaState.DRAINING:
                # A draining replica finishes its live work but takes
                # no arrivals: its slots are not capacity demand can
                # be scheduled onto, and its residual work should not
                # read as fleet pressure.
                draining += 1
                continue
            if state is ReplicaState.JOINING:
                joining += 1
            else:
                active += 1
            queue_depth += replica.queued_requests
            live_slots += replica.live_requests
            slot_capacity += replica.slot_capacity
            backlog_tokens += replica.backlog_tokens

        preemptions = self._preemptions_pending
        self._preemptions_pending = 0
        spills = fleet.routing.spills - self._spills_seen
        self._spills_seen = fleet.routing.spills

        a = self.alpha
        self._queue_ewma += a * (queue_depth - self._queue_ewma)
        self._preemption_ewma += a * (
            preemptions - self._preemption_ewma
        )
        self._spill_ewma += a * (spills - self._spill_ewma)
        self._backlog_window.append(backlog_tokens)
        slope = 0.0
        if len(self._backlog_window) >= 2:
            slope = (
                self._backlog_window[-1] - self._backlog_window[0]
            ) / (len(self._backlog_window) - 1)

        snapshot = PressureSnapshot(
            time=fleet.clock.now,
            queue_depth=queue_depth,
            queue_ewma=self._queue_ewma,
            live_slots=live_slots,
            slot_capacity=slot_capacity,
            backlog_tokens=backlog_tokens,
            backlog_slope=slope,
            preemption_rate=self._preemption_ewma,
            spill_rate=self._spill_ewma,
            active_replicas=active,
            joining_replicas=joining,
            draining_replicas=draining,
        )
        self.snapshots.append(snapshot)
        return snapshot
