"""The autoscaler: policy decisions executed against a live fleet.

:class:`Autoscaler` closes the loop — each fleet tick it asks the
:class:`~repro.autoscale.signals.SignalAggregator` for a
:class:`~repro.autoscale.signals.PressureSnapshot`, hands it to the
:class:`~repro.autoscale.policy.ScalingPolicy`, and executes the
returned :class:`~repro.autoscale.policy.ScaleDecision` against the
:class:`~repro.fleet.engine.FleetEngine`:

* **SCALE_OUT** — build fresh pools via the ``replica_factory`` and
  :meth:`~repro.fleet.engine.FleetEngine.add_replica` them; they warm
  up (JOINING) and join the ring on promotion, moving only the minimal
  key arc.
* **SCALE_IN** — :meth:`~repro.fleet.engine.FleetEngine.drain` the
  least-prefix-valuable replica: the ACTIVE replica minimising
  ``(cache_warmth, backlog_tokens, -replica_id)``, i.e. the one whose
  retirement forfeits the fewest warm prefills, sheds the least work,
  and (on ties) is the youngest.  Drains are zero-drop by
  construction — queued work migrates, live work finishes in place.
* **NUDGE_SD_UP / NUDGE_SD_DOWN** — intra-pool actuation at the
  replica bounds: every attached elastic-SD manager's
  ``activation_threshold`` is stepped, trading speculation slots
  against serving slots when membership cannot change.

Every executed decision becomes a :class:`ScaleEvent` carrying the
triggering snapshot, verbatim reason, the replica ids touched, and —
for membership changes — the ``ring_moves`` that change cost.
Scale-out movement happens later (at JOINING→ACTIVE promotion), so
per-tick ``ring_moves`` deltas are charged to the most recent
membership event: the audit trail answers "what did that decision cost
the ring" even though the ring pays lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import AutoscaleError
from repro.autoscale.policy import (
    HysteresisPolicy,
    ScaleAction,
    ScaleDecision,
    ScalingPolicy,
)
from repro.autoscale.signals import PressureSnapshot, SignalAggregator
from repro.fleet.engine import FleetEngine, FleetReplica
from repro.fleet.lifecycle import ReplicaState
from repro.serving.frontend import ServingEngine


@dataclass
class ScaleEvent:
    """One executed (non-hold) autoscaling decision, fully auditable.

    Attributes:
        time: fleet virtual time of execution.
        decision: the policy verdict that was executed.
        snapshot: the pressure snapshot that triggered it.
        replica_ids: replicas added (SCALE_OUT) or drained (SCALE_IN);
            empty for nudges.
        migrations: queued requests migrated off drained replicas.
        sd_threshold: elastic-SD activation threshold after a nudge
            (None for membership events).
        ring_moves: prefix keys that changed ring owner because of
            this event.  Charged lazily: scale-out arcs move at
            promotion, ticks after the decision, so each tick's ring
            delta is attributed to the most recent membership event.
    """

    time: float
    decision: ScaleDecision
    snapshot: PressureSnapshot
    replica_ids: List[int] = field(default_factory=list)
    migrations: int = 0
    sd_threshold: Optional[int] = None
    ring_moves: int = 0


class Autoscaler:
    """Event-driven elastic scaling of a :class:`FleetEngine`.

    Drive it from the fleet run loop::

        scaler = Autoscaler(fleet, replica_factory=build_pool)
        fleet.run(trace, on_tick=scaler.on_tick)

    Args:
        fleet: the fleet to scale.
        replica_factory: builds one freshly configured
            :class:`~repro.serving.frontend.ServingEngine` per
            scale-out replica.  Required for any policy that can emit
            SCALE_OUT; a scale-out decision without a factory raises
            :class:`~repro.errors.AutoscaleError`.
        policy: scaling policy (a default
            :class:`~repro.autoscale.policy.HysteresisPolicy` bounded
            by the fleet's starting size when omitted).
        signals: signal aggregator (a default one when omitted).
        sd_step: elastic-SD threshold change per nudge.
        min_sd_threshold / max_sd_threshold: clamp for nudged
            activation thresholds.
    """

    def __init__(
        self,
        fleet: FleetEngine,
        replica_factory: Optional[
            Callable[[], ServingEngine]
        ] = None,
        policy: Optional[ScalingPolicy] = None,
        signals: Optional[SignalAggregator] = None,
        sd_step: int = 4,
        min_sd_threshold: int = 1,
        max_sd_threshold: int = 64,
    ) -> None:
        if sd_step < 1:
            raise AutoscaleError(
                f"sd_step must be >= 1, got {sd_step}"
            )
        if not 1 <= min_sd_threshold <= max_sd_threshold:
            raise AutoscaleError(
                f"need 1 <= min_sd_threshold <= max_sd_threshold, got "
                f"{min_sd_threshold}..{max_sd_threshold}"
            )
        self.fleet = fleet
        self.replica_factory = replica_factory
        self.policy = policy or HysteresisPolicy(
            min_replicas=1,
            max_replicas=max(len(fleet.replicas), 1) * 4,
        )
        self.signals = signals or SignalAggregator()
        self.signals.attach(fleet)
        self.sd_step = sd_step
        self.min_sd_threshold = min_sd_threshold
        self.max_sd_threshold = max_sd_threshold
        #: Every executed decision, in execution order (the audit log).
        self.events: List[ScaleEvent] = []
        self._ring_moves_seen = fleet.routing.ring_moves
        self._last_membership_event: Optional[ScaleEvent] = None

    # -- the control loop hook ---------------------------------------------

    def on_tick(self, fleet: FleetEngine) -> None:
        """Observe → decide → actuate, once per fleet tick.

        Pass as ``on_tick=`` to :meth:`FleetEngine.run` (the fleet
        argument keeps the hook signature; it must be the fleet this
        autoscaler was built for).
        """
        if fleet is not self.fleet:
            raise AutoscaleError(
                "on_tick() called with a different fleet than the one "
                "this autoscaler controls"
            )
        self._charge_ring_moves()
        snapshot = self.signals.observe(fleet)
        decision = self.policy.decide(snapshot)
        if decision.is_hold:
            return
        self._execute(decision, snapshot)

    # -- actuation ---------------------------------------------------------

    def _execute(
        self, decision: ScaleDecision, snapshot: PressureSnapshot
    ) -> None:
        event = ScaleEvent(
            time=self.fleet.clock.now,
            decision=decision,
            snapshot=snapshot,
        )
        if decision.action is ScaleAction.SCALE_OUT:
            self._scale_out(event, decision.magnitude)
            self._last_membership_event = event
        elif decision.action is ScaleAction.SCALE_IN:
            self._scale_in(event, decision.magnitude)
            self._last_membership_event = event
        elif decision.action in (
            ScaleAction.NUDGE_SD_UP,
            ScaleAction.NUDGE_SD_DOWN,
        ):
            self._nudge_sd(event, decision)
        else:  # pragma: no cover - exhaustive over ScaleAction
            raise AutoscaleError(
                f"unknown scale action {decision.action!r}"
            )
        self.events.append(event)

    def _scale_out(self, event: ScaleEvent, magnitude: int) -> None:
        if self.replica_factory is None:
            raise AutoscaleError(
                "policy asked to scale out but no replica_factory was "
                "provided"
            )
        for _ in range(magnitude):
            replica_id = self.fleet.add_replica(self.replica_factory())
            event.replica_ids.append(replica_id)

    def _scale_in(self, event: ScaleEvent, magnitude: int) -> None:
        for _ in range(magnitude):
            victim = self._victim()
            if victim is None:
                break  # nothing ACTIVE left to drain; partial is fine
            event.migrations += self.fleet.drain(victim.replica_id)
            event.replica_ids.append(victim.replica_id)

    def _victim(self) -> Optional[FleetReplica]:
        """The least-prefix-valuable ACTIVE replica (drain target).

        Minimises ``(cache_warmth, backlog_tokens, -replica_id)``:
        coldest cache first (cheapest warm state to forfeit), then
        least outstanding work (fewest migrations), then the youngest
        replica (keep long-lived warm members).
        """
        candidates = [
            replica
            for replica in self.fleet.replicas
            if replica.state is ReplicaState.ACTIVE
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda replica: (
                replica.cache_warmth,
                replica.backlog_tokens,
                -replica.replica_id,
            ),
        )

    def _nudge_sd(
        self, event: ScaleEvent, decision: ScaleDecision
    ) -> None:
        delta = (
            self.sd_step
            if decision.action is ScaleAction.NUDGE_SD_UP
            else -self.sd_step
        )
        threshold: Optional[int] = None
        seen = set()
        for manager in self._managers():
            config = manager.config
            if id(config) in seen:
                continue  # workers may share one config object
            seen.add(id(config))
            config.activation_threshold = max(
                self.min_sd_threshold,
                min(
                    self.max_sd_threshold,
                    config.activation_threshold + delta,
                ),
            )
            threshold = config.activation_threshold
        event.sd_threshold = threshold

    def _managers(self):
        """Every elastic-SD manager on every non-retired replica."""
        for replica in self.fleet.replicas:
            if replica.state is ReplicaState.RETIRED:
                continue
            for manager in replica.frontend.managers:
                yield manager

    # -- ring-move attribution ---------------------------------------------

    def _charge_ring_moves(self) -> None:
        """Charge new ring movement to the latest membership event.

        Scale-out ring arcs move at JOINING→ACTIVE promotion — ticks
        after the decision — so each tick's delta of the router's
        ``ring_moves`` counter is attributed to the most recent
        membership :class:`ScaleEvent` (drain movement, which happens
        synchronously inside :meth:`_scale_in`, lands on its own event
        the same way on the next tick).
        """
        delta = self.fleet.routing.ring_moves - self._ring_moves_seen
        if delta <= 0:
            return
        self._ring_moves_seen = self.fleet.routing.ring_moves
        if self._last_membership_event is not None:
            self._last_membership_event.ring_moves += delta

    # -- audit -------------------------------------------------------------

    @property
    def membership_changes(self) -> int:
        """Executed SCALE_OUT / SCALE_IN decisions (thrash metric)."""
        return sum(
            1
            for event in self.events
            if event.decision.action
            in (ScaleAction.SCALE_OUT, ScaleAction.SCALE_IN)
        )

    def audit(self) -> List[Tuple[float, str, int, str]]:
        """Compact trail: ``(time, action, magnitude, reason)`` rows."""
        return [
            (
                event.time,
                event.decision.action.value,
                event.decision.magnitude,
                event.decision.reason,
            )
            for event in self.events
        ]
