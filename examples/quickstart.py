"""Quickstart: lossless speculative decoding with a trained drafter.

Builds a pretrained TinyLM target (the "base model"), trains an
EAGLE-style single-layer drafter on its rollouts, and compares vanilla
decoding against tree speculative decoding — identical output
distributions, far fewer target forward passes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EagleDrafter,
    EagleDrafterConfig,
    SdStrategy,
    TinyLMConfig,
    generate,
    speculative_generate,
)
from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    evaluate_topk_accuracy,
)
from repro.drafter.training import (
    build_training_batch,
    collect_training_sequences,
)
from repro.llm.pretrain import pretrained_target


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. The target model: a small pretrained autoregressive LM.
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    target = pretrained_target(config, rng, chain_prob=0.75)
    print(f"target: {target.num_parameters} parameters, "
          f"{target.num_layers} layers")

    # 2. Collect rollouts and cache hidden states (the RL inference
    #    stage does this for free in TLT).
    prompts = [list(rng.integers(3, 32, size=4)) for _ in range(40)]
    rollouts = generate(
        target, prompts, max_new_tokens=60, temperature=0.8, rng=rng
    )
    cached = collect_training_sequences(target, rollouts.full_sequences)
    batch = build_training_batch(cached, unroll_steps=1)

    # 3. Train the single-decoder-layer drafter.
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    trainer = DrafterTrainer(
        drafter, DrafterTrainingConfig(learning_rate=5e-3)
    )
    print("training drafter", end="", flush=True)
    for _ in range(5):
        trainer.train_epochs(batch, 50)
        print(".", end="", flush=True)
    accuracy = evaluate_topk_accuracy(drafter, batch, k=3)
    print(f" done (top-3 accuracy {accuracy:.1%})")

    # 4. Vanilla vs speculative decoding on fresh prompts.
    fresh = [list(rng.integers(3, 32, size=4)) for _ in range(8)]
    vanilla = generate(
        target, fresh, max_new_tokens=60, temperature=0.8,
        rng=np.random.default_rng(1),
    )
    strategy = SdStrategy(draft_depth=6, topk=4, tokens_to_verify=24)
    spec = speculative_generate(
        target, drafter, fresh, max_new_tokens=60, temperature=0.8,
        rng=np.random.default_rng(2), strategy=strategy,
    )

    total_tokens = sum(spec.response_lengths)
    # Per-sequence accounting: vanilla needs one target forward per
    # generated token; speculation commits several tokens per forward.
    print(f"\nvanilla decoding : "
          f"{sum(vanilla.response_lengths)} target forwards "
          f"for {sum(vanilla.response_lengths)} tokens")
    print(f"speculative      : {spec.target_steps} target forwards "
          f"for {total_tokens} tokens")
    print(f"accept length    : "
          f"{spec.metrics.mean_accept_length:.2f} tokens/cycle")
    print(f"per-position accept rates: "
          f"{[f'{r:.2f}' for r in spec.metrics.profile.rates()]}")
    print("\nBoth samplers draw from *exactly* the same distribution —")
    print("speculative decoding is mathematically lossless.")


if __name__ == "__main__":
    main()
