"""End-to-end TLT-style reasoning RL training.

Runs GRPO on the successor-chain reasoning task with the full TLT data
path: speculative rollouts through an adaptive drafter, hidden-state
capture into the Online DataBuffer, and spot drafter training between
steps (the idle-bubble analogue).  Prints the reward curve alongside the
drafter's accept length — which *improves* over training because the spot
trainer keeps the drafter aligned with the evolving policy.

Run:  python examples/reasoning_rl_training.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EagleDrafter,
    EagleDrafterConfig,
    RlConfig,
    RlTrainer,
    SdStrategy,
    SpeculativeRollout,
    TinyLMConfig,
    Vocabulary,
)
from repro.drafter import DrafterTrainer, DrafterTrainingConfig
from repro.drafter.training import collect_training_sequences
from repro.llm.pretrain import pretrained_target
from repro.spot import OnlineDataBuffer, SpotTrainer
from repro.workload import SuccessorChainTask

RL_STEPS = 24
SPOT_UPDATES_PER_STEP = 30


def main() -> None:
    rng = np.random.default_rng(0)
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    policy = pretrained_target(config, rng, chain_prob=0.72)
    vocab = Vocabulary(config.vocab_size)
    task = SuccessorChainTask(vocab=vocab, target_pairs=10)

    # TLT components: adaptive drafter + speculative rollout backend +
    # spot trainer fed by the DataBuffer.
    drafter = EagleDrafter(policy, EagleDrafterConfig(), rng)
    backend = SpeculativeRollout(
        drafter, SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
    )
    spot = SpotTrainer(
        trainer=DrafterTrainer(
            drafter, DrafterTrainingConfig(learning_rate=5e-3)
        ),
        buffer=OnlineDataBuffer(capacity_tokens=200_000),
        checkpoints=None,
        batch_sequences=24,
        max_positions=1024,
    )

    trainer = RlTrainer(
        policy, task,
        RlConfig(num_prompts=8, group_size=8, max_new_tokens=32,
                 temperature=1.0, learning_rate=6e-3, kl_coef=0.002),
        backend=backend,
        rng=np.random.default_rng(1),
    )

    spot_rng = np.random.default_rng(2)
    print(f"{'step':>4} {'reward':>7} {'len':>6} "
          f"{'accept':>7} {'drafter upd':>11}")
    for step in range(RL_STEPS):
        spot.begin_step(step)
        report = trainer.step()
        # Inference stage: cache hidden states of finished rollouts.
        assert trainer.last_rollout is not None
        spot.ingest(
            collect_training_sequences(
                policy, trainer.last_rollout.full_sequences, step
            )
        )
        # Long-tail bubble: opportunistic drafter updates.
        slice_report = spot.train_slice(SPOT_UPDATES_PER_STEP, spot_rng)
        accept = report.rollout_stats.get("accept_length", 1.0)
        print(f"{step:>4} {report.mean_reward:>7.3f} "
              f"{report.mean_response_length:>6.1f} "
              f"{accept:>7.2f} {spot.total_updates:>11}")

    print("\nReward learned by GRPO while the adaptive drafter kept the")
    print("rollout accelerated — and losslessly so: the reward curve is")
    print("statistically identical to vanilla-decoding GRPO (Figure 12).")


if __name__ == "__main__":
    main()
