"""Prefix-cache serving: one prefill per shared prompt across the pool.

Drives a mixed workload — grouped GRPO-style rollout requests (every
group shares one prompt by construction) plus an interactive stream
drawn from a small family of repeated prompts — through three stacks of
the same 2-worker pool:

* plain FIFO admission (the baseline: every request prefills itself);
* FIFO + a per-worker :class:`~repro.cache.manager.KVCacheManager`
  (repeated prompts become cache hits, scheduling untouched);
* the full prefix stack:
  :class:`~repro.specdec.control.PrefixAwareAdmission` co-admits
  shared-prefix requests into one admission wave and
  :class:`~repro.serving.dispatch.PrefixAffinityDispatch` routes
  arrivals to the worker whose cache already holds their prefix.

Every committed token is byte-identical across the three stacks — the
hidden hand-off served from cache is a pure function of the prompt —
so the prefill-launch column is pure savings.

Run:  python examples/prefix_cache_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.drafter import EagleDrafter, EagleDrafterConfig
from repro.llm import TinyLMConfig
from repro.llm.pretrain import pretrained_target
from repro.serving import (
    LeastLoadedDispatch,
    PrefixAffinityDispatch,
    ServingEngine,
)
from repro.specdec import PrefixAwareAdmission, SdStrategy
from repro.workload import mixed_serving_trace, shared_prefix_trace


def build_trace(vocab_size: int):
    """Grouped rollout floor + shared-prefix interactive stream."""
    rollouts = mixed_serving_trace(
        np.random.default_rng(11),
        vocab_size,
        num_interactive=1,  # placeholder stream, replaced below
        num_batch=12,
        batch_group_size=4,  # 3 GRPO groups x 4 members
        batch_gap=1.5,
    )
    floor = [r for r in rollouts if r.slo.name == "batch"]
    stream = shared_prefix_trace(
        np.random.default_rng(12),
        vocab_size,
        num_requests=10,
        num_prefixes=3,  # system-prompt-style repeated prefixes
        prefix_len=4,
        suffix_len=0,
        mean_interarrival=2.5,
        start_id=1000,
    )
    return sorted(
        floor + stream, key=lambda r: (r.arrival_time, r.request_id)
    )


def main() -> None:
    rng = np.random.default_rng(0)
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    target = pretrained_target(config, rng, chain_prob=0.75)
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
    trace = build_trace(config.vocab_size)
    groups = len({r.group for r in trace if r.group is not None})
    print(
        f"trace: {len(trace)} requests "
        f"({groups} rollout groups sharing one prompt each, "
        f"interactive stream over 3 repeated prefixes)\n"
    )

    def pool(admission=None, cache=None, dispatch=None):
        return ServingEngine(
            target, drafter, num_workers=2, strategy=strategy,
            temperature=0.8, max_batch_size=2,
            dispatch=dispatch or LeastLoadedDispatch(),
            group_affinity=True, work_stealing=False,
            admission=admission, kv_cache_tokens=cache,
        )

    stacks = [
        ("fifo", pool()),
        ("fifo + cache", pool(cache=4096)),
        (
            "prefix-aware + affinity",
            pool(
                admission=PrefixAwareAdmission(),
                cache=4096,
                dispatch=PrefixAffinityDispatch(),
            ),
        ),
    ]
    print(f"{'stack':>24} {'prefill':>8} {'saved':>6} {'hit rate':>9} "
          f"{'p99':>7} {'ticks':>6}")
    reports = []
    for label, frontend in stacks:
        report = frontend.run(list(trace))
        reports.append(report)
        print(
            f"{label:>24} {report.prefill_launches:>8} "
            f"{report.prefill_launches_saved:>6} "
            f"{report.prefix_hit_rate:>8.0%} "
            f"{report.p99_latency:>7.1f} {report.ticks:>6.0f}"
        )

    reference = [r.response for r in reports[0].records]
    identical = all(
        [r.response for r in report.records] == reference
        for report in reports[1:]
    )
    baseline, full = reports[0], reports[-1]
    print(
        f"\nprefill amortisation: {baseline.prefill_launches} -> "
        f"{full.prefill_launches} launches "
        f"({baseline.prefill_launches / full.prefill_launches:.1f}x "
        f"fewer)"
    )
    print(f"all outputs byte-identical across stacks: {identical}")


if __name__ == "__main__":
    main()
