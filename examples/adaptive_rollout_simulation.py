"""Cluster-scale simulation: VeRL vs TLT on a long-tail workload.

Uses the roofline-calibrated simulator to reproduce the paper's headline
comparison on a 64-GPU H100 cluster: per-system RL-step times, the
Figure 14-style running-request profile of one worker, and the idle-GPU
time TLT converts into free drafter training.

Run:  python examples/adaptive_rollout_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterSpec, StepWorkload
from repro.hardware import RooflineModel, get_gpu, get_model
from repro.rollout import (
    AdaptiveSdConfig,
    AdaptiveSdManager,
    RolloutEngine,
)
from repro.systems import (
    OpenR1System,
    TltBaseSystem,
    TltSystem,
    VerlSystem,
)
from repro.workload import LognormalLengths


def main() -> None:
    rng = np.random.default_rng(0)
    lengths = LognormalLengths(
        median=2500, sigma=1.15, cap=32_768
    ).sample(rng, 512)
    workload = StepWorkload(lengths=lengths.tolist(), prompt_tokens=512)
    print(f"workload: {workload.num_requests} requests, "
          f"median {np.median(lengths):.0f}, max {lengths.max()} tokens")

    model = get_model("Qwen2.5-7B")
    cluster = ClusterSpec(
        num_workers=16, gpus_per_worker=4, gpu=get_gpu("H100")
    )

    print("\n=== end-to-end RL step (Qwen-7B, 64x H100) ===")
    print(f"{'system':>10} {'step (s)':>9} {'tput (t/s)':>11} "
          f"{'vs VeRL':>8} {'drafter upd':>11}")
    reports = [
        cls(model, cluster).simulate_step(workload)
        for cls in [OpenR1System, VerlSystem, TltBaseSystem, TltSystem]
    ]
    verl_tps = next(
        r.throughput_tps for r in reports if r.system == "VeRL"
    )
    for report in reports:
        ratio = report.throughput_tps / verl_tps
        print(f"{report.system:>10} {report.step_time_s:>9.1f} "
              f"{report.throughput_tps:>11.0f} {ratio:>7.2f}x "
              f"{report.drafter_updates:>11}")

    print("\n=== one worker's running-request profile (Figure 14) ===")
    roofline = RooflineModel(
        model=get_model("Qwen2.5-32B"), gpu=get_gpu("H100"),
        tensor_parallel=4,
    )
    worker_lengths = LognormalLengths(
        median=2500, sigma=1.1, cap=30_000
    ).sample(np.random.default_rng(3), 128).tolist()
    baseline = RolloutEngine(roofline).simulate(worker_lengths, 512)
    manager = AdaptiveSdManager(
        AdaptiveSdConfig(activation_threshold=32)
    )
    adaptive = RolloutEngine(roofline, sd_manager=manager).simulate(
        worker_lengths, 512
    )
    print(f"baseline rollout : {baseline.total_time_s:7.1f}s")
    print(f"adaptive SD      : {adaptive.total_time_s:7.1f}s "
          f"({baseline.total_time_s / adaptive.total_time_s:.2f}x)")
    print(f"SD engaged at    : {adaptive.sd_start_s:7.1f}s "
          f"(threshold: 32 running requests)")

    marks = np.linspace(0, adaptive.total_time_s, 20)
    profile = []
    for mark in marks:
        active = next(
            (p.active_requests for p in adaptive.points
             if p.time_s >= mark),
            0,
        )
        profile.append(active)
    print("active requests over time: " +
          " ".join(f"{a:3d}" for a in profile))


if __name__ == "__main__":
    main()
