"""The free byproduct: deploying the RL-trained drafter for serving.

TLT's spot trainer leaves behind a drafter aligned with the final policy.
This example trains one, verifies its quality (accept length and
per-position accept rates), sweeps SD strategies with the BEG-MAB tuner
offline, and projects serving throughput across GPU generations with the
roofline model (the paper's Table 2 deployment story).

Run:  python examples/drafter_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BegMabSelector,
    EagleDrafter,
    EagleDrafterConfig,
    SdStrategy,
    TinyLMConfig,
    generate,
    speculative_generate,
)
from repro.drafter import DrafterTrainer, DrafterTrainingConfig
from repro.drafter.training import (
    build_training_batch,
    collect_training_sequences,
)
from repro.hardware import RooflineModel, drafter_spec, get_gpu, get_model
from repro.llm.pretrain import pretrained_target


def main() -> None:
    rng = np.random.default_rng(0)
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    target = pretrained_target(config, rng, chain_prob=0.72)

    # Train the drafter (in TLT this happened for free in the bubbles).
    rollouts = generate(
        target,
        [list(rng.integers(3, 32, size=4)) for _ in range(40)],
        max_new_tokens=60, temperature=0.8, rng=rng,
    )
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    trainer = DrafterTrainer(
        drafter, DrafterTrainingConfig(learning_rate=5e-3)
    )
    batch = build_training_batch(
        collect_training_sequences(target, rollouts.full_sequences),
        unroll_steps=1,
    )
    trainer.train_epochs(batch, 250)

    # Offline strategy sweep with the BEG-MAB reward bookkeeping.
    strategies = [
        SdStrategy(draft_depth=4, topk=4, tokens_to_verify=8),
        SdStrategy(draft_depth=6, topk=4, tokens_to_verify=16),
        SdStrategy(draft_depth=8, topk=4, tokens_to_verify=24),
    ]
    selector = BegMabSelector(
        strategies, batch_thresholds=[1, 4, 16],
        rng=np.random.default_rng(4),
    )
    prompts = [list(rng.integers(3, 32, size=4)) for _ in range(6)]
    print("strategy sweep (measured on the substrate):")
    best = None
    for strategy in strategies:
        out = speculative_generate(
            target, drafter, prompts, max_new_tokens=60,
            temperature=0.8, rng=np.random.default_rng(5),
            strategy=strategy,
        )
        accept = out.metrics.mean_accept_length
        selector.record(strategy, 1.0, [accept - 1.0], 1)
        print(f"  {strategy.describe():15s} accept={accept:.2f}")
        if best is None or accept > best[1]:
            best = (strategy, accept)
    assert best is not None
    strategy, accept = best
    print(f"chosen for deployment: {strategy.describe()} "
          f"(accept {accept:.2f})")

    # Project serving throughput across GPU generations (Table 2).
    model = get_model("Qwen2.5-7B")
    spec = drafter_spec(model)
    print("\nprojected serving throughput (Qwen-7B analogue, BS=1):")
    print(f"{'GPU':>9} {'w/o SD':>8} {'w/ SD':>8} {'speedup':>8}")
    for gpu_name in ["B200", "H100", "A100", "RTX4090", "RTX3090"]:
        roofline = RooflineModel(model=model, gpu=get_gpu(gpu_name))
        vanilla = roofline.vanilla_tokens_per_s(1, context_tokens=4000)
        sd = roofline.sd_tokens_per_s(
            spec, min(accept, 5.2), 1, strategy.draft_depth,
            strategy.topk, strategy.tokens_to_verify,
            context_tokens=4000,
        )
        print(f"{gpu_name:>9} {vanilla:>8.0f} {sd:>8.0f} "
              f"{sd / vanilla:>7.2f}x")


if __name__ == "__main__":
    main()
