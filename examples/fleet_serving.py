"""Fleet tier: 4 replicas x 2 workers behind prefix-hash routing.

Builds a :class:`~repro.fleet.engine.FleetEngine` of four 2-worker
serving pools behind prefix-aware consistent-hash routing and drives a
multi-tenant trace (six tenants each reusing one prompt family, over a
GRPO-grouped rollout floor) through it, exercising the full lifecycle
mid-run:

* at t=12 one replica is **drained** — it leaves the ring, its queued
  work migrates to the survivors, its live work finishes in place, and
  it retires with zero dropped requests;
* at t=20 a refreshed drafter is **published fleet-wide** — the swap
  rolls replica by replica, each pool rolling one worker per tick, so
  at most one worker in the whole fleet is ever mid-swap.

The run ends with the per-replica table and fleet-wide summary from
:class:`~repro.fleet.report.FleetReport`, and a byte-identity check
against a single-pool reference (routing, draining, and equal-weights
swaps move work, never outputs).

Run:  python examples/fleet_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.drafter import EagleDrafter, EagleDrafterConfig
from repro.fleet import FleetEngine, PrefixHashRouting
from repro.llm import TinyLMConfig
from repro.llm.pretrain import pretrained_target
from repro.serving import (
    LeastLoadedDispatch,
    PrefixAffinityDispatch,
    ServingEngine,
)
from repro.specdec import PrefixAwareAdmission, SdStrategy
from repro.workload import fleet_trace

NUM_REPLICAS = 4
NUM_WORKERS = 2
DRAIN_AT = 12.0
PUBLISH_AT = 20.0


def build_pool(target, drafter, strategy) -> ServingEngine:
    return ServingEngine(
        target,
        drafter,
        num_workers=NUM_WORKERS,
        strategy=strategy,
        temperature=0.7,
        max_batch_size=2,
        dispatch=PrefixAffinityDispatch(fallback=LeastLoadedDispatch()),
        group_affinity=True,
        work_stealing=False,
        admission=PrefixAwareAdmission(),
        kv_cache_tokens=4096,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    target = pretrained_target(config, rng, chain_prob=0.75)
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)

    trace = fleet_trace(
        np.random.default_rng(21),
        config.vocab_size,
        num_tenants=6,
        requests_per_tenant=5,
        num_batch=12,
        batch_group_size=4,
        prefix_len=4,
        mean_interarrival=1.5,
        batch_gap=2.0,
    )
    tenants = len({tuple(r.prompt[:4]) for r in trace})
    print(
        f"trace: {len(trace)} requests across {tenants} prompt "
        f"families (tenants + GRPO groups)"
    )
    print(
        f"fleet: {NUM_REPLICAS} replicas x {NUM_WORKERS} workers, "
        f"prefix-hash routing with least-loaded spill\n"
    )

    refreshed = drafter.clone()
    fired = {"drain": False, "publish": False}

    def control_plane(fleet: FleetEngine) -> None:
        now = fleet.clock.now
        if not fired["drain"] and now >= DRAIN_AT:
            fired["drain"] = True
            migrated = fleet.drain(1)
            print(
                f"t={now:>4.0f}  drain replica 1: {migrated} queued "
                f"requests migrated, live work finishing in place"
            )
        if not fired["publish"] and now >= PUBLISH_AT:
            fired["publish"] = True
            fleet.swap_drafter(refreshed)
            print(
                f"t={now:>4.0f}  publish refreshed drafter fleet-wide "
                f"(rolling, one replica at a time)"
            )

    fleet = FleetEngine(
        [
            build_pool(target, drafter, strategy)
            for _ in range(NUM_REPLICAS)
        ],
        routing=PrefixHashRouting(),
    )
    report = fleet.run(trace, on_tick=control_plane)

    print("\n=== per-replica ===")
    header = (
        f"{'replica':>7} {'state':>8} {'routed':>6} {'served':>6} "
        f"{'p99':>6} {'hit rate':>8} {'prefill':>7}"
    )
    print(header)
    for row in report.per_replica():
        print(
            f"{int(row['replica']):>7} {row['state']:>8} "
            f"{int(row['routed']):>6} {int(row['requests']):>6} "
            f"{row['p99_latency']:>6.1f} "
            f"{row['prefix_hit_rate']:>8.0%} "
            f"{int(row['prefill_launches']):>7}"
        )

    print("\n=== fleet-wide summary ===")
    for key, value in report.summary().items():
        print(f"  {key:>24}: {value:.2f}")

    # Byte-identity: the same trace through ONE reference pool.
    reference = build_pool(target, drafter, strategy).run(trace)
    fleet_out = {
        r.request.request_id: r.response
        for r in report.pooled().records
    }
    single_out = {
        r.request.request_id: r.response for r in reference.records
    }
    print(
        f"\nresolved {report.num_requests}/{len(trace)} requests, "
        f"{report.migrations} migrated, replica 1 "
        f"{report.replica_states[1]}, "
        f"{report.drafter_rolls} fleet drafter roll(s)"
    )
    print(
        f"outputs byte-identical to single-pool reference: "
        f"{fleet_out == single_out}"
    )


if __name__ == "__main__":
    main()
