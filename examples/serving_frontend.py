"""Online serving: SLO-aware multi-worker dispatch over spec decode.

Opens the online-serving workload: a Poisson-arrival, long-tail request
trace (interactive + standard + batch SLO classes) served by TLT's
adaptive speculative-decoding workers.  Compares dispatch policies —
single-worker FIFO, multi-worker round-robin, predicted-length-aware
least-loaded, and long-tail-segregating — on p50/p99 latency, TTFT and
SLO attainment, then demonstrates mid-decode cancellation leaving
survivors byte-identical.

Run:  python examples/serving_frontend.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterSpec
from repro.hardware import get_gpu, get_model
from repro.llm.pretrain import pretrained_target
from repro.llm import TinyLMConfig
from repro.drafter import EagleDrafter, EagleDrafterConfig
from repro.serving import (
    BATCH,
    INTERACTIVE,
    STANDARD,
    LeastLoadedDispatch,
    LongTailDispatch,
    RoundRobinDispatch,
    poisson_trace,
)
from repro.systems import TltSystem
from repro.workload import LognormalLengths


def main() -> None:
    rng = np.random.default_rng(0)
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    target = pretrained_target(config, rng, chain_prob=0.75)
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)

    system = TltSystem(
        get_model("Qwen2.5-7B"),
        ClusterSpec(num_workers=2, gpus_per_worker=4, gpu=get_gpu("H100")),
        activation_threshold=6,
    )

    # A long-tail online trace: most requests are short, a few run long.
    trace = poisson_trace(
        np.random.default_rng(7),
        num_requests=40,
        mean_interarrival=0.7,
        length_model=LognormalLengths(median=10.0, sigma=1.1, cap=80),
        vocab_size=config.vocab_size,
        slo_mix=((INTERACTIVE, 0.3), (STANDARD, 0.5), (BATCH, 0.2)),
    )
    spread = sorted(r.max_new_tokens for r in trace)
    print(f"trace: {len(trace)} requests, lengths "
          f"p50={spread[len(spread) // 2]} max={spread[-1]} tokens\n")

    print(f"{'policy':>15} {'workers':>7} {'p50':>6} {'p99':>7} "
          f"{'p99 ttft':>8} {'SLO':>6} {'stolen':>6}")
    setups = [
        ("fifo (1 worker)", 1, RoundRobinDispatch()),
        ("round-robin", 2, RoundRobinDispatch()),
        ("least-loaded", 2, LeastLoadedDispatch()),
        ("long-tail", 2, LongTailDispatch(threshold=24)),
    ]
    for label, workers, policy in setups:
        frontend = system.serving_frontend(
            target, drafter, num_workers=workers, max_batch_size=4,
            temperature=0.8, dispatch=policy,
        )
        report = frontend.run(trace)
        print(f"{label:>15} {workers:>7} {report.p50_latency:>6.1f} "
              f"{report.p99_latency:>7.1f} "
              f"{report.ttft_percentile(99):>8.1f} "
              f"{report.slo_attainment:>5.0%} {report.stolen:>6}")

    # Cancellation: kill the longest request mid-decode; every survivor
    # commits byte-identical tokens (private per-request RNG streams).
    # A static strategy isolates the guarantee — an adaptive manager's
    # strategy choice legitimately depends on the live batch.
    from repro.serving import ServingEngine
    from repro.specdec import SdStrategy

    strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)

    def static_frontend():
        return ServingEngine(
            target, drafter, num_workers=2, strategy=strategy,
            temperature=0.8, max_batch_size=4,
        )

    longest = max(trace, key=lambda r: r.max_new_tokens)
    baseline = static_frontend().run(trace)

    frontend = static_frontend()
    for request in trace:
        frontend.submit(request)
    for _ in range(8):
        frontend.tick()
    frontend.cancel(longest.request_id)
    report = frontend.run()

    survivors_equal = all(
        a.response == b.response
        for a, b in zip(baseline.records, report.records)
        if a.request.request_id != longest.request_id
    )
    cancelled = report.records[longest.request_id]
    print(f"\ncancelled request {longest.request_id} after 8 ticks "
          f"({len(cancelled.response)}/{longest.max_new_tokens} tokens "
          f"committed)")
    print(f"all {len(trace) - 1} survivors byte-identical: "
          f"{survivors_equal}")


if __name__ == "__main__":
    main()
