"""Elastic autoscaling: a 1-replica fleet rides out a flash crowd.

Builds a fleet that starts as a single 2-worker pool, wires an
:class:`~repro.autoscale.controller.Autoscaler` (hysteresis policy,
watermarks 1.25 / 0.45, fast scale-out + slow scale-in cooldowns) onto
its run loop, and drives a :func:`~repro.workload.scenarios.
flash_crowd_trace` through it: a calm Poisson baseline shattered
mid-run by a crowd arriving an order of magnitude faster, spread over
fresh prompt families.

Watch the audit trail: pressure crosses the high watermark a few ticks
into the crowd, replicas are added (warming up before they join the
ring), the crowd drains, and the slow cooldown retires the extra
replicas one zero-drop drain at a time — every decision logged with
the pressure snapshot that triggered it and the ring movement it cost.

Run:  python examples/autoscaled_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.autoscale import Autoscaler, HysteresisPolicy
from repro.drafter import EagleDrafter, EagleDrafterConfig
from repro.fleet import FleetEngine
from repro.llm import TinyLMConfig
from repro.llm.pretrain import pretrained_target
from repro.serving import ServingEngine
from repro.specdec import SdStrategy
from repro.workload import flash_crowd_trace

NUM_WORKERS = 2
MAX_REPLICAS = 4


def main() -> None:
    rng = np.random.default_rng(0)
    config = TinyLMConfig(
        vocab_size=32, hidden_size=32, context_window=4, num_layers=4,
        init_scale=0.8,
    )
    target = pretrained_target(config, rng, chain_prob=0.75)
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)

    def build_pool() -> ServingEngine:
        return ServingEngine(
            target,
            drafter,
            num_workers=NUM_WORKERS,
            strategy=strategy,
            temperature=0.7,
            max_batch_size=2,
            kv_cache_tokens=4096,
        )

    trace = flash_crowd_trace(
        np.random.default_rng(7),
        config.vocab_size,
        num_base=30,
        num_crowd=60,
        base_interarrival=4.0,
        crowd_interarrival=0.3,
        crowd_families=6,
    )
    print(
        f"trace: {len(trace)} requests — calm baseline, then a crowd "
        f"arriving ~13x faster over fresh prompt families\n"
    )

    fleet = FleetEngine([build_pool()], warmup_ticks=2)
    scaler = Autoscaler(
        fleet,
        replica_factory=build_pool,
        policy=HysteresisPolicy(
            min_replicas=1,
            max_replicas=MAX_REPLICAS,
            high_watermark=1.25,
            low_watermark=0.45,
            out_cooldown=3,
            in_cooldown=12,
        ),
    )
    report = fleet.run(trace, on_tick=scaler.on_tick)

    print("=== audit trail ===")
    for event in scaler.events:
        ids = (
            f" replicas={event.replica_ids}"
            if event.replica_ids
            else ""
        )
        moves = (
            f" ring_moves={event.ring_moves}"
            if event.ring_moves
            else ""
        )
        print(
            f"t={event.time:>5.0f}  {event.decision.action.value:<14}"
            f"x{event.decision.magnitude}{ids}{moves}  "
            f"[{event.decision.reason}]"
        )

    print("\n=== outcome ===")
    peak = max(
        s.active_replicas + s.joining_replicas
        for s in scaler.signals.snapshots
    )
    print(f"  requests served     : {report.num_requests}")
    print(f"  peak replicas       : {peak} (started at 1)")
    print(f"  final replicas      : "
          f"{sum(1 for r in fleet.replicas if r.state.value == 'active')}")
    print(f"  slo attainment      : {report.slo_attainment:.0%}")
    print(f"  p99 latency         : {report.p99_latency:.1f}")
    print(f"  worker cycles (cost): {report.worker_cycles}")
    print(f"  membership changes  : {scaler.membership_changes}")
    print(f"  migrations          : {report.migrations}")

    ids = sorted(
        record.request.request_id
        for pool_report in report.replica_reports
        for record in pool_report.records
    )
    assert ids == sorted(r.request_id for r in trace)
    print("\nzero-drop: every request id served exactly once")


if __name__ == "__main__":
    main()
