"""Cross-cutting determinism invariants of the decode/serving stack.

Every request owns a private seeded random stream, and batched target
rows are numerically identical to per-sequence rows — so committed
tokens must be invariant to everything the scheduler is free to choose:
batch size, admission timing, park/resume points, drafter swaps (equal
weights), dispatch policy, work stealing, and preemption.  This suite
replays one seeded scenario (``scenario_factory`` in ``conftest.py``)
through each of those schedules and asserts byte-identical outputs;
any engine grown later inherits the suite by accepting the same
request objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpecDecodeError
from repro.serving import (
    BATCH,
    INTERACTIVE,
    LeastLoadedDispatch,
    RequestState,
    RoundRobinDispatch,
    ServingEngine,
    SloPreemption,
)


def _drain(engine):
    while engine.has_work:
        engine.step()
    return [list(s.response) for s in engine.result().slots]


def _committed_now(engine):
    """Per-request committed tokens at the current cycle boundary."""
    out = {}
    for slot in engine.scheduler.live:
        out[slot.request.request_id] = list(slot.response)
    for request_id, slot in engine.scheduler._finished.items():
        out[request_id] = list(slot.response)
    return [out[request_id] for request_id in sorted(out)]


def _responses(report):
    return [list(r.response) for r in report.records]


def _total_cycles(scenario):
    engine = scenario.engine()
    engine.start(scenario.requests())
    while engine.has_work:
        engine.step()
    return len(engine.cycle_reports)


# -- (a) batch-size invariance ---------------------------------------------


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("batch", [1, 2, None])
    def test_batch_size_byte_identical(
        self, scenario_factory, seed, batch
    ):
        """Sequential (1), bounded (2), and unbounded batching commit
        the same tokens per request."""
        scenario = scenario_factory(seed, ragged_caps=True)
        engine = scenario.engine(max_batch_size=batch)
        engine.start(scenario.requests())
        assert _drain(engine) == scenario.reference_responses()

    def test_staggered_admission_byte_identical(self, scenario_factory):
        """Requests admitted mid-flight (one per cycle) decode the same
        tokens as requests admitted up front."""
        scenario = scenario_factory(3, num_requests=4)
        engine = scenario.engine()
        requests = scenario.requests()
        engine.start(requests[:1])
        pending = list(requests[1:])
        while engine.has_work or pending:
            if pending:
                engine.admit(pending.pop(0))
            engine.step()
        assert _drain(engine) == scenario.reference_responses()

    def test_neighbour_set_irrelevant(self, scenario_factory):
        """A request decodes the same tokens alone as inside a batch of
        strangers (its stream is private)."""
        scenario = scenario_factory(11, num_requests=3)
        reference = scenario.reference_responses()
        for index in range(scenario.num_requests):
            engine = scenario.engine()
            engine.start([scenario.requests()[index]])
            assert _drain(engine) == [reference[index]]


# -- (b) park/resume -------------------------------------------------------


def _run_with_park(scenario, park_cycle, victim, hold=2):
    """Drain the scenario, parking ``victim`` at ``park_cycle`` for up
    to ``hold`` cycles (resumed early if the pool runs dry).

    Returns (responses, parked) where ``parked`` says whether the park
    was feasible (victim live at that boundary).
    """
    engine = scenario.engine()
    engine.start(scenario.requests())
    cycle = 0
    parked = False
    resumed = False
    while engine.has_work or engine.num_parked:
        if not parked and cycle == park_cycle:
            live_ids = [
                s.request.request_id for s in engine.scheduler.live
            ]
            if victim in live_ids:
                engine.park(victim)
                parked = True
                parked_at = cycle
        if parked and not resumed and (
            cycle - parked_at >= hold or not engine.has_work
        ):
            engine.resume(victim)
            resumed = True
        if engine.has_work:
            engine.step()
            cycle += 1
    return [list(s.response) for s in engine.result().slots], parked


class TestParkResume:
    @pytest.mark.parametrize("victim", [0, 2])
    def test_park_resume_at_every_feasible_cycle(
        self, scenario_factory, victim
    ):
        """Parking the victim at EVERY boundary it is live at — and
        resuming a couple of cycles later — never moves a token."""
        scenario = scenario_factory(5, num_requests=3)
        reference = scenario.reference_responses()
        feasible = 0
        for park_cycle in range(_total_cycles(scenario) + 2):
            responses, parked = _run_with_park(
                scenario, park_cycle, victim
            )
            assert responses == reference
            feasible += int(parked)
        assert feasible >= 2  # the sweep actually exercised parks

    def test_park_until_pool_drains_then_resume(self, scenario_factory):
        """A request parked until every neighbour has finished resumes
        and completes byte-identically (longest possible suspension)."""
        scenario = scenario_factory(9, num_requests=3)
        reference = scenario.reference_responses()
        engine = scenario.engine()
        engine.start(scenario.requests())
        engine.step()
        victim = engine.scheduler.live[0].request.request_id
        engine.park(victim)
        while engine.has_work:
            engine.step()  # everyone else runs to completion
        engine.resume(victim)
        while engine.has_work:
            engine.step()
        assert [
            list(s.response) for s in engine.result().slots
        ] == reference

    def test_repeated_park_resume_rounds(self, scenario_factory):
        """Multiple park/resume rounds on one request still sum to an
        uninterrupted decode."""
        scenario = scenario_factory(13, num_requests=3)
        reference = scenario.reference_responses()
        engine = scenario.engine()
        engine.start(scenario.requests())
        rounds = 0
        while engine.has_work or engine.num_parked:
            live_ids = [
                s.request.request_id for s in engine.scheduler.live
            ]
            if 1 in live_ids and rounds < 3:
                engine.park(1)
                if engine.has_work:
                    engine.step()
                engine.resume(1)
                rounds += 1
            if engine.has_work:
                engine.step()
        assert rounds >= 2
        assert [
            list(s.response) for s in engine.result().slots
        ] == reference

    def test_cancel_while_parked_leaves_survivors_identical(
        self, scenario_factory
    ):
        """Cancelling a parked request never perturbs survivors."""
        scenario = scenario_factory(17, num_requests=3)
        reference = scenario.reference_responses()
        engine = scenario.engine()
        engine.start(scenario.requests())
        engine.step()
        engine.park(1)
        engine.step()
        engine.cancel(1)
        while engine.has_work:
            engine.step()
        slots = engine.result().slots
        assert slots[1].cancelled
        assert [list(slots[0].response), list(slots[2].response)] == [
            reference[0], reference[2]
        ]

    def test_serving_park_resume_byte_identical(self, scenario_factory):
        """Front-end explicit park/resume at tick granularity preserves
        outputs against an uninterrupted serving run."""
        scenario = scenario_factory(21, num_requests=3)
        baseline = ServingEngine(
            scenario.target, scenario.drafter, num_workers=1,
            strategy=scenario.strategy,
            temperature=scenario.temperature, max_batch_size=3,
        )
        base = baseline.run(scenario.serving_requests())
        frontend = ServingEngine(
            scenario.target, scenario.drafter, num_workers=1,
            strategy=scenario.strategy,
            temperature=scenario.temperature, max_batch_size=3,
        )
        for request in scenario.serving_requests():
            frontend.submit(request)
        frontend.tick()
        assert frontend.park(0)
        # The front-end auto-resumes into spare capacity on later
        # ticks; either the explicit resume wins the race or the
        # request is already running again.
        frontend.tick()
        resumed = frontend.resume(0)
        assert resumed or (
            frontend.records[0].state is RequestState.RUNNING
        )
        report = frontend.run(())
        assert report.records[0].preemptions == 1
        assert _responses(report) == _responses(base)
        assert all(r.finished for r in report.records)


# -- (c) drafter hot-swap --------------------------------------------------


class TestDrafterHotSwap:
    def test_swap_to_equal_weights_at_every_boundary(
        self, scenario_factory, trained_drafter
    ):
        """Swapping in a clone (equal weights) at EVERY cycle boundary
        is a no-op for committed tokens."""
        scenario = scenario_factory(2, num_requests=3)
        reference = scenario.reference_responses()
        engine = scenario.engine()
        engine.start(scenario.requests())
        while engine.has_work:
            engine.swap_drafter(trained_drafter.clone())
            engine.step()
        assert [
            list(s.response) for s in engine.result().slots
        ] == reference
        assert engine.drafter_swaps >= 2

    def test_swap_mid_decode_is_deterministic(
        self, scenario_factory, untrained_drafter
    ):
        """Swapping to a DIFFERENT drafter mid-decode yields the same
        outputs on every rerun (the swap point is part of the seeded
        schedule)."""
        scenario = scenario_factory(4, num_requests=3)

        def run():
            engine = scenario.engine()
            engine.start(scenario.requests())
            cycle = 0
            while engine.has_work:
                if cycle == 2:
                    engine.swap_drafter(untrained_drafter)
                engine.step()
                cycle += 1
            return [list(s.response) for s in engine.result().slots]

        first = run()
        assert run() == first
        assert all(response for response in first)

    def test_swap_preserves_committed_prefix(
        self, scenario_factory, untrained_drafter
    ):
        """Tokens committed before the swap boundary are exactly the
        unswapped run's tokens at that boundary — a swap can only
        influence the future."""
        scenario = scenario_factory(6, num_requests=3)
        plain = scenario.engine()
        plain.start(scenario.requests())
        swapped = scenario.engine()
        swapped.start(scenario.requests())
        for _ in range(3):
            if plain.has_work:
                plain.step()
            if swapped.has_work:
                swapped.step()
        plain_at_boundary = _committed_now(plain)
        assert _committed_now(swapped) == plain_at_boundary
        swapped.swap_drafter(untrained_drafter)
        while swapped.has_work:
            swapped.step()
        final = [list(s.response) for s in swapped.result().slots]
        for prefix, full in zip(plain_at_boundary, final):
            assert full[: len(prefix)] == prefix

    def test_swap_mid_step_rejected(self, scenario_factory):
        """The cycle-boundary contract is enforced, not advisory: a
        swap from inside a step raises."""
        scenario = scenario_factory(8, num_requests=2)
        engine = scenario.engine()
        engine.start(scenario.requests())
        engine._in_step = True
        with pytest.raises(SpecDecodeError):
            engine.swap_drafter(scenario.drafter)
        engine._in_step = False

    def test_serving_rolling_swap_under_preemption(
        self, scenario_factory, trained_drafter
    ):
        """A rolling clone swap across a preempting pool changes no
        output and drops no request."""
        scenario = scenario_factory(10, num_requests=4)
        slos = [BATCH, BATCH, INTERACTIVE, INTERACTIVE]

        def run(swap):
            frontend = ServingEngine(
                scenario.target, scenario.drafter, num_workers=2,
                strategy=scenario.strategy,
                temperature=scenario.temperature, max_batch_size=1,
                preemption=SloPreemption(),
            )
            for request in scenario.serving_requests(
                arrival_gap=1.0, slos=slos
            ):
                frontend.submit(request)
            frontend.tick()
            if swap:
                frontend.swap_drafter(trained_drafter.clone())
            return frontend.run(())

        base = run(swap=False)
        swapped = run(swap=True)
        assert _responses(swapped) == _responses(base)
        assert all(r.finished for r in swapped.records)


# -- (d) dispatch, stealing, preemption ------------------------------------


class TestServingScheduleInvariance:
    def _trace(self, scenario, caps=(24, 4, 10, 4, 10)):
        requests = scenario.serving_requests(arrival_gap=0.5)
        for request, cap in zip(requests, caps):
            request.max_new_tokens = cap
            request.predicted_length = cap
        return requests

    def _run(self, scenario, dispatch, stealing):
        frontend = ServingEngine(
            scenario.target, scenario.drafter, num_workers=2,
            strategy=scenario.strategy,
            temperature=scenario.temperature, max_batch_size=1,
            dispatch=dispatch, work_stealing=stealing,
        )
        return frontend.run(self._trace(scenario))

    def test_work_stealing_byte_identical(self, scenario_factory):
        """Stealing queued requests across workers rebalances load but
        never moves a token."""
        scenario = scenario_factory(12, num_requests=5)
        idle = self._run(scenario, RoundRobinDispatch(), stealing=False)
        stolen = self._run(scenario, RoundRobinDispatch(), stealing=True)
        assert stolen.stolen > 0  # the schedule actually diverged
        assert _responses(stolen) == _responses(idle)

    def test_dispatch_policy_byte_identical(self, scenario_factory):
        """Round-robin and least-loaded place requests differently yet
        commit identical tokens."""
        scenario = scenario_factory(12, num_requests=5)
        rr = self._run(scenario, RoundRobinDispatch(), stealing=False)
        ll = self._run(scenario, LeastLoadedDispatch(), stealing=False)
        placements_rr = [r.worker_id for r in rr.records]
        placements_ll = [r.worker_id for r in ll.records]
        assert placements_rr != placements_ll
        assert _responses(rr) == _responses(ll)

    def test_preemption_and_urgent_lane_byte_identical(
        self, scenario_factory
    ):
        """SLO preemption (parks + urgent admission lane) shifts
        latency between classes without touching any output."""
        scenario = scenario_factory(14, num_requests=5)
        slos = [BATCH, BATCH, BATCH, INTERACTIVE, INTERACTIVE]

        def run(preemption):
            frontend = ServingEngine(
                scenario.target, scenario.drafter, num_workers=1,
                strategy=scenario.strategy,
                temperature=scenario.temperature, max_batch_size=2,
                preemption=preemption,
            )
            return frontend.run(
                scenario.serving_requests(arrival_gap=1.0, slos=slos)
            )

        base = run(None)
        preempted = run(SloPreemption())
        assert preempted.preemptions > 0
        assert _responses(preempted) == _responses(base)
        assert all(r.finished for r in preempted.records)

    def test_rollout_backend_invariant_to_pool_shape(
        self, scenario_factory
    ):
        """The serving rollout backend returns byte-identical rollouts
        from a 1-worker and a 2-worker pool (the co-location
        guarantee in miniature)."""
        from repro.rl import ServingRolloutBackend

        scenario = scenario_factory(16, num_requests=4)
        prompts = [scenario.prompts[0]] * 2 + [scenario.prompts[1]] * 2

        def run(num_workers):
            frontend = ServingEngine(
                scenario.target, scenario.drafter,
                num_workers=num_workers,
                strategy=scenario.strategy,
                temperature=scenario.temperature, max_batch_size=1,
            )
            backend = ServingRolloutBackend(frontend)
            return backend.generate(
                scenario.target, prompts, 8,
                scenario.temperature, np.random.default_rng(3),
            )

        solo = run(1)
        pooled = run(2)
        assert pooled.responses == solo.responses
        assert pooled.prompts == solo.prompts
        assert pooled.finished == solo.finished
