"""Tests for the GPU catalog and roofline latency model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hardware import (
    GPU_CATALOG,
    MODEL_CATALOG,
    RooflineModel,
    drafter_spec,
    get_gpu,
    get_model,
)
from repro.hardware.memory import (
    kv_cache_bytes,
    model_memory_bytes,
    total_device_memory,
)


@pytest.fixture()
def roofline():
    return RooflineModel(
        model=get_model("Qwen2.5-7B"), gpu=get_gpu("H100")
    )


class TestCatalogs:
    def test_all_gpus_valid(self):
        for spec in GPU_CATALOG.values():
            assert spec.effective_tflops > 0
            assert spec.effective_gbps > 0

    def test_unknown_gpu_raises(self):
        with pytest.raises(HardwareModelError):
            get_gpu("TPU")

    def test_unknown_model_raises(self):
        with pytest.raises(HardwareModelError):
            get_model("GPT-5")

    def test_model_sizes_ordered(self):
        assert (
            get_model("Qwen2.5-7B").params
            < get_model("Qwen2.5-32B").params
            < get_model("Llama-3.3-70B").params
        )

    def test_drafter_much_smaller(self):
        target = get_model("Qwen2.5-32B")
        drafter = drafter_spec(target)
        assert drafter.params < 0.1 * target.params
        assert drafter.num_layers == 1


class TestRoofline:
    def test_decode_memory_bound_small_batch(self, roofline):
        cost = roofline.forward_cost(1, 1, context_tokens=1000)
        assert cost.bound == "memory"

    def test_verify_more_compute_than_decode(self, roofline):
        decode = roofline.forward_cost(1, 1)
        verify = roofline.forward_cost(1, 49)
        assert verify.compute_s > decode.compute_s
        assert verify.memory_s == pytest.approx(decode.memory_s)

    def test_large_batch_compute_bound(self, roofline):
        cost = roofline.forward_cost(256, 8)
        assert cost.bound == "compute"

    def test_decode_step_monotone_in_batch(self, roofline):
        times = [
            roofline.decode_step_s(b, context_tokens=2000)
            for b in [1, 8, 64, 512]
        ]
        assert times == sorted(times)

    def test_sd_speedup_decreases_with_batch(self, roofline):
        """Table 4's primary trend."""
        drafter = drafter_spec(roofline.model)
        speedups = [
            roofline.sd_speedup(
                drafter, accept_length=5.0, batch_size=b,
                draft_depth=8, topk=8, tokens_to_verify=48,
                context_tokens=2000,
            )
            for b in [1, 8, 32, 128]
        ]
        assert speedups[0] > speedups[-1]

    def test_sd_speedup_higher_on_older_gpus(self):
        """Table 2's trend: slower GPUs see larger SD speedups."""
        model = get_model("Qwen2.5-7B")
        drafter = drafter_spec(model)

        def speedup(gpu_name):
            rl = RooflineModel(model=model, gpu=get_gpu(gpu_name))
            return rl.sd_speedup(
                drafter, accept_length=5.2, batch_size=1,
                draft_depth=6, topk=8, tokens_to_verify=48,
                context_tokens=4000,
            )

        assert speedup("RTX3090") > speedup("H100") > speedup("B200")

    def test_vanilla_throughput_scale(self):
        """H100 7B decode lands in the paper's ~165 tok/s regime."""
        rl = RooflineModel(
            model=get_model("Qwen2.5-7B"), gpu=get_gpu("H100")
        )
        tps = rl.vanilla_tokens_per_s(1, context_tokens=4000)
        assert 120 < tps < 220

    def test_tp_reduces_latency(self):
        model = get_model("Qwen2.5-32B")
        t1 = RooflineModel(model=model, gpu=get_gpu("H100"),
                           tensor_parallel=1).decode_step_s(1)
        t4 = RooflineModel(model=model, gpu=get_gpu("H100"),
                           tensor_parallel=4).decode_step_s(1)
        assert t4 < t1

    def test_achieved_tflops_saturates(self, roofline):
        """Figure 5c: achieved TFLOPS rises with batch then saturates."""
        achieved = [
            roofline.achieved_tflops(roofline.forward_cost(b, 1))
            for b in [1, 16, 128, 512]
        ]
        assert achieved == sorted(achieved)
        assert achieved[-1] <= roofline.gpu.effective_tflops * 1.01

    def test_sd_reaches_peak_at_smaller_batch(self, roofline):
        """Figure 5c's gray arrow: SD is compute-bound much earlier."""
        ridge_vanilla = None
        ridge_sd = None
        for b in range(1, 513):
            if ridge_vanilla is None and (
                roofline.forward_cost(b, 1).bound == "compute"
            ):
                ridge_vanilla = b
            if ridge_sd is None and (
                roofline.forward_cost(b, 49).bound == "compute"
            ):
                ridge_sd = b
            if ridge_vanilla and ridge_sd:
                break
        assert ridge_sd is not None
        assert ridge_vanilla is None or ridge_sd < ridge_vanilla

    def test_validation(self, roofline):
        with pytest.raises(HardwareModelError):
            roofline.forward_cost(0, 1)
        with pytest.raises(HardwareModelError):
            roofline.forward_cost(1, 1, context_tokens=-1)
        with pytest.raises(HardwareModelError):
            roofline.sd_tokens_per_s(
                drafter_spec(roofline.model), 0.5, 1, 4, 4, 8
            )
        with pytest.raises(HardwareModelError):
            roofline.train_step_s(0)

    @given(st.integers(1, 256), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_property_total_positive(self, batch, tokens):
        rl = RooflineModel(
            model=get_model("Qwen2.5-7B"), gpu=get_gpu("A100")
        )
        assert rl.forward_cost(batch, tokens).total_s > 0


class TestMemory:
    def test_weight_bytes_tp_sharding(self):
        model = get_model("Qwen2.5-7B")
        assert model_memory_bytes(model, 2) == pytest.approx(
            model.weight_bytes / 2
        )

    def test_kv_monotone(self):
        model = get_model("Qwen2.5-7B")
        assert kv_cache_bytes(model, 2000) > kv_cache_bytes(model, 1000)

    def test_oom_raised(self):
        from repro.errors import OutOfMemoryError

        model = get_model("Llama-3.3-70B")
        gpu = get_gpu("RTX3090")
        with pytest.raises(OutOfMemoryError):
            total_device_memory(model, gpu, kv_tokens=0)

    def test_fits_when_sharded(self):
        model = get_model("Qwen2.5-7B")
        gpu = get_gpu("H100")
        used = total_device_memory(
            model, gpu, kv_tokens=100_000, tensor_parallel=1
        )
        assert used > 0
