"""Tests for the SpotTrainer integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    EagleDrafter,
    EagleDrafterConfig,
)
from repro.drafter.training import collect_training_sequences
from repro.errors import DrafterError
from repro.spot import CheckpointManager, OnlineDataBuffer, SpotTrainer


@pytest.fixture()
def spot(target, rollout_sequences, tmp_path):
    drafter = EagleDrafter(
        target, EagleDrafterConfig(), np.random.default_rng(0)
    )
    trainer = DrafterTrainer(
        drafter, DrafterTrainingConfig(learning_rate=5e-3)
    )
    buffer = OnlineDataBuffer(capacity_tokens=100_000)
    spot = SpotTrainer(
        trainer=trainer,
        buffer=buffer,
        checkpoints=CheckpointManager(str(tmp_path)),
        batch_sequences=8,
        max_positions=256,
        checkpoint_every=5,
    )
    spot.begin_step(0)
    spot.ingest(collect_training_sequences(target, rollout_sequences))
    return spot


class TestTrainSlice:
    def test_updates_happen(self, spot):
        report = spot.train_slice(5, np.random.default_rng(0))
        assert report.updates == 5
        assert report.positions > 0
        assert spot.total_updates == 5

    def test_empty_buffer_graceful(self, target, tmp_path):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        trainer = DrafterTrainer(drafter, DrafterTrainingConfig())
        spot = SpotTrainer(
            trainer=trainer, buffer=OnlineDataBuffer(), checkpoints=None
        )
        report = spot.train_slice(3, np.random.default_rng(0))
        assert report.updates == 0

    def test_deadline_preempts(self, spot):
        report = spot.train_slice(
            10_000, np.random.default_rng(0), deadline_s=0.05
        )
        assert report.preempted
        assert report.updates < 10_000

    def test_loss_improves_across_slices(self, spot):
        first = spot.train_slice(10, np.random.default_rng(0))
        for _ in range(4):
            last = spot.train_slice(10, np.random.default_rng(0))
        assert last.ce_loss < first.ce_loss

    def test_checkpoints_written(self, spot):
        spot.train_slice(12, np.random.default_rng(0))
        spot.checkpoints.wait_all()
        assert spot.checkpoints.latest() is not None

    def test_checkpoint_restores_progress(self, spot, target):
        spot.train_slice(10, np.random.default_rng(0))
        spot.checkpoints.wait_all()
        path = spot.checkpoints.latest()
        trained_state = spot.trainer.drafter.state_dict()
        fresh = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(99)
        )
        fresh.load_state_dict(spot.checkpoints.load(path))
        for name, arr in trained_state.items():
            assert np.allclose(fresh.params[name], arr)

    def test_preempt_checkpoints(self, spot):
        spot.train_slice(3, np.random.default_rng(0))
        foreground = spot.preempt()
        assert foreground >= 0.0
        spot.checkpoints.wait_all()
        assert spot.checkpoints.latest() is not None

    def test_validation(self, spot):
        with pytest.raises(DrafterError):
            spot.train_slice(0, np.random.default_rng(0))

    def test_config_validation(self, spot):
        with pytest.raises(DrafterError):
            SpotTrainer(
                trainer=spot.trainer, buffer=spot.buffer,
                batch_sequences=0,
            )
