"""Tests for the RL-step cluster simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, RlStepSimulator, StepWorkload
from repro.errors import ConfigError, OutOfMemoryError
from repro.hardware import get_gpu, get_model
from repro.rollout import AdaptiveSdConfig


@pytest.fixture()
def cluster():
    return ClusterSpec(
        num_workers=8, gpus_per_worker=4, gpu=get_gpu("H100")
    )


@pytest.fixture()
def workload():
    rng = np.random.default_rng(0)
    from repro.workload import LognormalLengths

    lengths = LognormalLengths(
        median=1500, sigma=1.1, cap=16000
    ).sample(rng, 128)
    return StepWorkload(lengths=lengths.tolist(), prompt_tokens=256)


class TestSpecs:
    def test_total_gpus(self, cluster):
        assert cluster.total_gpus == 32

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterSpec(num_workers=0, gpus_per_worker=1,
                        gpu=get_gpu("H100"))
        with pytest.raises(ConfigError):
            StepWorkload(lengths=[])


class TestVanillaStep:
    def test_phase_structure(self, cluster, workload):
        simulator = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster
        )
        result = simulator.simulate_step(workload)
        assert result.rollout_s > 0
        assert result.inference_s > 0
        assert result.training_s > 0
        assert result.step_time_s == pytest.approx(
            result.rollout_s + result.inference_s
            + result.training_s + result.transition_s
        )

    def test_rollout_dominates(self, cluster, workload):
        """Figure 1(a): rollout is ~85% of the step."""
        simulator = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster
        )
        result = simulator.simulate_step(workload)
        assert result.rollout_fraction > 0.6

    def test_idle_gpu_time_from_long_tail(self, cluster, workload):
        simulator = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster
        )
        result = simulator.simulate_step(workload)
        assert result.idle_gpu_s > 0
        assert result.drafter_updates == 0

    def test_rollout_time_is_slowest_worker(self, cluster, workload):
        simulator = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster
        )
        result = simulator.simulate_step(workload)
        assert result.rollout_s == pytest.approx(
            max(result.worker_rollout_s)
        )

    def test_striping_balances(self, cluster, workload):
        simulator = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster
        )
        result = simulator.simulate_step(workload)
        times = np.asarray(result.worker_rollout_s)
        assert times.max() < 2.5 * times.min()


class TestTltStep:
    def test_sd_reduces_rollout_time(self, cluster, workload):
        vanilla = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster
        ).simulate_step(workload)
        tlt = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster,
            sd_config=AdaptiveSdConfig(activation_threshold=32),
            spot_training=True,
        ).simulate_step(workload)
        assert tlt.rollout_s < vanilla.rollout_s

    def test_spot_training_harvests_bubbles(self, cluster, workload):
        tlt = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster,
            sd_config=AdaptiveSdConfig(activation_threshold=32),
            spot_training=True,
        ).simulate_step(workload)
        assert tlt.drafter_updates > 0
        assert tlt.drafter_train_gpu_s > 0
        kinds = {seg.kind for seg in tlt.segments}
        assert "drafter" in kinds

    def test_spot_training_free(self, cluster, workload):
        """Bubble harvesting must not lengthen the step."""
        base = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster,
            sd_config=AdaptiveSdConfig(activation_threshold=32),
            spot_training=False,
        ).simulate_step(workload)
        spot = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster,
            sd_config=AdaptiveSdConfig(activation_threshold=32),
            spot_training=True,
        ).simulate_step(workload)
        assert spot.rollout_s <= base.rollout_s * 1.001

    def test_segments_cover_rollout(self, cluster, workload):
        result = RlStepSimulator(
            get_model("Qwen2.5-7B"), cluster,
            sd_config=AdaptiveSdConfig(activation_threshold=32),
            spot_training=True,
        ).simulate_step(workload)
        for worker_id in range(cluster.num_workers):
            segs = sorted(
                (s for s in result.segments
                 if s.worker_id == worker_id),
                key=lambda s: s.start_s,
            )
            assert segs[0].start_s == 0.0
            assert segs[-1].end_s == pytest.approx(result.rollout_s)
            for a, b in zip(segs, segs[1:]):
                assert a.end_s == pytest.approx(b.start_s)


class TestMemoryGuard:
    def test_training_oom_small_cluster(self, workload):
        """Table 3: Qwen-32B OOMs on 1-2 nodes."""
        cluster = ClusterSpec(
            num_workers=1, gpus_per_worker=8, gpu=get_gpu("H100")
        )
        simulator = RlStepSimulator(get_model("Qwen2.5-32B"), cluster)
        with pytest.raises(OutOfMemoryError):
            simulator.simulate_step(workload)

    def test_fits_on_more_nodes(self, workload):
        cluster = ClusterSpec(
            num_workers=4, gpus_per_worker=8, gpu=get_gpu("H100")
        )
        simulator = RlStepSimulator(get_model("Qwen2.5-32B"), cluster)
        result = simulator.simulate_step(workload)
        assert result.step_time_s > 0

    def test_guard_can_be_disabled(self, workload):
        cluster = ClusterSpec(
            num_workers=1, gpus_per_worker=8, gpu=get_gpu("H100")
        )
        simulator = RlStepSimulator(
            get_model("Qwen2.5-32B"), cluster,
            check_training_memory=False,
        )
        assert simulator.simulate_step(workload).step_time_s > 0
