"""Tests for the online serving front-end (repro.serving)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, ServingError
from repro.serving import (
    BATCH,
    INTERACTIVE,
    STANDARD,
    LeastLoadedDispatch,
    LongTailDispatch,
    RequestState,
    RoundRobinDispatch,
    ServingEngine,
    ServingRequest,
    SloClass,
    VirtualClock,
    poisson_trace,
)
from repro.specdec import SdStrategy
from repro.systems import TltSystem
from repro.cluster import ClusterSpec
from repro.hardware import get_gpu, get_model
from repro.workload import LognormalLengths

STRATEGY = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _trace(num=12, mean_gap=1.0, seed=0, cap=30, sigma=1.0,
           slo_mix=((STANDARD, 1.0),), **kwargs):
    return poisson_trace(
        np.random.default_rng(seed),
        num_requests=num,
        mean_interarrival=mean_gap,
        length_model=LognormalLengths(median=8.0, sigma=sigma, cap=cap),
        vocab_size=24,
        slo_mix=slo_mix,
        **kwargs,
    )


def _frontend(target, drafter, workers=2, max_batch=3, dispatch=None,
              **kwargs):
    return ServingEngine(
        target, drafter, num_workers=workers, strategy=STRATEGY,
        temperature=0.9, max_batch_size=max_batch, dispatch=dispatch,
        **kwargs,
    )


class TestClock:
    def test_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance()
        clock.advance(2.5)
        assert clock.now == 3.5
        assert clock.ticks == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            VirtualClock(start=-1.0)
        with pytest.raises(ConfigError):
            VirtualClock().advance(0.0)


class TestRequests:
    def test_slo_validation(self):
        with pytest.raises(ConfigError):
            SloClass("", 1.0, 2.0)
        with pytest.raises(ConfigError):
            SloClass("x", 0.0, 2.0)
        with pytest.raises(ConfigError):
            SloClass("x", 1.0, 2.0, deadline=0.0)

    def test_request_validation(self):
        with pytest.raises(ConfigError):
            ServingRequest(0, [1], 0, 0.0)
        with pytest.raises(ConfigError):
            ServingRequest(0, [1], 4, -1.0)
        with pytest.raises(ConfigError):
            ServingRequest(0, [1], 4, 0.0, predicted_length=0)

    def test_dispatch_length_falls_back_to_cap(self):
        request = ServingRequest(0, [1], 16, 0.0)
        assert request.dispatch_length == 16
        request = ServingRequest(1, [1], 16, 0.0, predicted_length=4)
        assert request.dispatch_length == 4

    def test_poisson_trace_is_seed_deterministic(self):
        first = _trace(seed=3)
        second = _trace(seed=3)
        assert [r.prompt for r in first] == [r.prompt for r in second]
        assert [r.arrival_time for r in first] == [
            r.arrival_time for r in second
        ]
        assert [r.seed for r in first] == [r.seed for r in second]
        arrivals = [r.arrival_time for r in first]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_poisson_trace_predictor_noise(self):
        noisy = _trace(seed=5, predictor_noise=0.5)
        assert any(
            r.predicted_length != r.max_new_tokens for r in noisy
        )
        oracle = _trace(seed=5)
        assert all(
            r.predicted_length == r.max_new_tokens for r in oracle
        )


class _FakeWorker:
    def __init__(self, worker_id, live, waiting, capacity, backlog):
        self.worker_id = worker_id
        self.num_live = live
        self.num_waiting = waiting
        self.free_slots = max(0, capacity - live)
        self.backlog_tokens = backlog


def _request(request_id, predicted):
    return ServingRequest(
        request_id, [1, 2], max(predicted, 1), 0.0,
        predicted_length=predicted,
    )


class TestDispatchPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinDispatch()
        workers = [_FakeWorker(i, 0, 0, 4, 0) for i in range(3)]
        picks = [policy.choose(_request(i, 4), workers) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_smallest_backlog(self):
        policy = LeastLoadedDispatch()
        workers = [
            _FakeWorker(0, 2, 1, 4, 120),
            _FakeWorker(1, 1, 0, 4, 30),
            _FakeWorker(2, 3, 2, 4, 300),
        ]
        assert policy.choose(_request(0, 10), workers) == 1

    def test_long_tail_segregates(self):
        policy = LongTailDispatch(threshold=20)
        workers = [
            _FakeWorker(0, 0, 0, 4, 10),
            _FakeWorker(1, 0, 0, 4, 0),
        ]
        # Long request -> tail group (last worker).
        assert policy.choose(_request(0, 25), workers) == 1
        # Short request -> head group even though the tail is idler.
        assert policy.choose(_request(1, 4), workers) == 0
        # Single worker: both groups collapse.
        assert policy.choose(_request(2, 25), workers[:1]) == 0

    def test_long_tail_validation(self):
        with pytest.raises(ConfigError):
            LongTailDispatch(threshold=0)
        with pytest.raises(ConfigError):
            LongTailDispatch(threshold=4, tail_fraction=1.0)

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigError):
            RoundRobinDispatch().choose(_request(0, 4), [])


class TestServingEngine:
    def test_all_requests_finish(self, target, trained_drafter):
        frontend = _frontend(target, trained_drafter)
        report = frontend.run(_trace())
        assert len(report.records) == 12
        assert all(r.finished for r in report.records)
        for record in report.records:
            assert record.latency is not None and record.latency > 0
            assert record.ttft is not None and record.ttft > 0
            assert record.ttft <= record.latency
            assert 0 < len(record.response) <= record.request.max_new_tokens
        assert report.total_tokens > 0
        assert len(report.worker_busy_cycles) == 2

    def test_responses_independent_of_dispatch(self, target,
                                               trained_drafter):
        """Routing, worker count and stealing change latency only —
        never the committed tokens (private per-request streams)."""
        trace = _trace(num=14, mean_gap=0.7, cap=40, sigma=1.2)
        outputs = []
        for workers, dispatch, stealing in [
            (1, RoundRobinDispatch(), False),
            (2, RoundRobinDispatch(), True),
            (2, LeastLoadedDispatch(), True),
            (3, LongTailDispatch(threshold=16), True),
        ]:
            report = _frontend(
                target, trained_drafter, workers=workers,
                dispatch=dispatch, work_stealing=stealing,
            ).run(trace)
            outputs.append([tuple(r.response) for r in report.records])
        assert all(out == outputs[0] for out in outputs[1:])

    def test_multi_worker_beats_single_worker_tail_latency(
        self, target, trained_drafter
    ):
        trace = _trace(num=16, mean_gap=0.5, cap=40, sigma=1.2)
        single = _frontend(target, trained_drafter, workers=1).run(trace)
        multi = _frontend(target, trained_drafter, workers=2).run(trace)
        assert multi.p99_latency < single.p99_latency
        assert multi.ticks <= single.ticks

    def test_work_stealing_moves_and_repoints_records(
        self, target, trained_drafter
    ):
        # Round-robin on a bursty trace backs one worker up; stealing
        # must move queued requests and update their records.
        trace = _trace(num=16, mean_gap=0.3, cap=40, sigma=1.2)
        report = _frontend(
            target, trained_drafter, workers=2,
            dispatch=RoundRobinDispatch(), work_stealing=True,
        ).run(trace)
        assert report.stolen > 0
        moved = [r for r in report.records if r.stolen > 0]
        assert moved
        assert all(r.finished for r in moved)

    def test_explicit_cancellation_keeps_survivors_identical(
        self, target, trained_drafter
    ):
        trace = _trace(num=10, mean_gap=0.8, cap=40, sigma=1.2)
        baseline = _frontend(target, trained_drafter).run(trace)
        victim = max(trace, key=lambda r: r.max_new_tokens)

        frontend = _frontend(target, trained_drafter)
        for request in trace:
            frontend.submit(request)
        for _ in range(6):
            frontend.tick()
        assert frontend.cancel(victim.request_id)
        report = frontend.run()

        record = report.records[victim.request_id]
        assert record.cancelled and not record.slo_met
        for base, now in zip(baseline.records, report.records):
            if now.request.request_id == victim.request_id:
                continue
            assert now.response == base.response

    def test_cancel_pending_and_double_cancel(self, target,
                                              trained_drafter):
        frontend = _frontend(target, trained_drafter)
        request = ServingRequest(0, [5, 6], 8, arrival_time=5.0, seed=1)
        frontend.submit(request)
        assert frontend.cancel(0)
        assert not frontend.cancel(0)
        assert not frontend.cancel(99)
        report = frontend.run()
        assert report.records[0].cancelled
        assert report.records[0].response == []

    def test_deadline_expiry_cancels_unfinished(self, target,
                                                trained_drafter):
        tight = SloClass("tight", ttft_target=1.0, latency_target=2.0,
                         deadline=3.0)
        requests = [
            ServingRequest(0, [5, 6, 7], 60, 0.0, slo=tight, seed=11),
            ServingRequest(1, [9, 10, 11], 4, 0.0, seed=12),
        ]
        frontend = _frontend(target, trained_drafter, workers=1)
        report = frontend.run(requests)
        assert report.records[0].cancelled
        assert report.records[0].latency <= 60
        assert report.records[1].finished

    def test_duplicate_submit_rejected(self, target, trained_drafter):
        frontend = _frontend(target, trained_drafter)
        request = ServingRequest(0, [5], 4, 0.0)
        frontend.submit(request)
        with pytest.raises(ServingError):
            frontend.submit(request)

    def test_run_bound_raises(self, target, trained_drafter):
        frontend = _frontend(target, trained_drafter)
        with pytest.raises(ServingError):
            frontend.run(_trace(), max_ticks=1)

    def test_config_validation(self, target, trained_drafter):
        with pytest.raises(ConfigError):
            ServingEngine(
                target, trained_drafter, num_workers=0,
                strategy=STRATEGY,
            )

    def test_report_shape(self, target, trained_drafter):
        mix = ((INTERACTIVE, 0.4), (STANDARD, 0.4), (BATCH, 0.2))
        report = _frontend(target, trained_drafter).run(
            _trace(num=15, slo_mix=mix, seed=2)
        )
        summary = report.summary()
        assert summary["requests"] == 15.0
        assert 0.0 <= summary["slo_attainment"] <= 1.0
        assert summary["p99_latency"] >= summary["p50_latency"]
        per_class = report.per_class()
        assert sum(v["requests"] for v in per_class.values()) == 15.0
        for stats in per_class.values():
            assert stats["finished"] + stats["cancelled"] <= (
                stats["requests"]
            )
        assert len(report.utilization) == 2
        assert all(0.0 <= u <= 1.0 for u in report.utilization)


class TestAdaptiveServing:
    def _system(self, threshold=4):
        return TltSystem(
            get_model("Qwen2.5-7B"),
            ClusterSpec(
                num_workers=2, gpus_per_worker=4, gpu=get_gpu("H100")
            ),
            activation_threshold=threshold,
        )

    def test_per_worker_managers_see_own_batches(self, target,
                                                 trained_drafter):
        """Each worker's manager engages on ITS live batch; a shared
        bandit pools accept-length measurements across the pool."""
        system = self._system(threshold=2)
        frontend = system.serving_frontend(
            target, trained_drafter, num_workers=2, max_batch_size=4,
            temperature=0.9,
        )
        assert len(frontend.managers) == 2
        assert (
            frontend.managers[0].selector
            is frontend.managers[1].selector
        )
        report = frontend.run(
            _trace(num=12, mean_gap=0.5, cap=30, sigma=1.2)
        )
        assert all(r.finished for r in report.records)
        # Both SD and vanilla cycles occurred across the pool (live
        # batches cross the threshold as the dispatcher fills/drains).
        reports = [
            r
            for w in frontend.workers
            for r in w.engine.cycle_reports
        ]
        assert any(r.sd_active for r in reports)
        assert any(not r.sd_active for r in reports)
        for worker in frontend.workers:
            for cycle in worker.engine.cycle_reports:
                if cycle.sd_active:
                    assert cycle.live_batch <= 2

    def test_private_bandits_when_unshared(self, target,
                                           trained_drafter):
        frontend = self._system().serving_frontend(
            target, trained_drafter, num_workers=2,
            share_bandit=False,
        )
        assert (
            frontend.managers[0].selector
            is not frontend.managers[1].selector
        )
