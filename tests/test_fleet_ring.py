"""Property-style tests for the consistent-hash ring (repro.fleet)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.blocks import effective_prefill_context
from repro.errors import ConfigError, FleetError
from repro.fleet import ConsistentHashRing, PrefixHashRouting, prefix_key


def _keys(rng: np.random.Generator, count: int, length: int = 4):
    return [
        tuple(int(t) for t in rng.integers(0, 1000, size=length))
        for _ in range(count)
    ]


class TestRingBasics:
    def test_membership(self):
        ring = ConsistentHashRing([0, 1, 2])
        assert len(ring) == 3
        assert ring.members == [0, 1, 2]
        assert 1 in ring and 7 not in ring
        ring.remove(1)
        assert ring.members == [0, 2]
        ring.add(7)
        assert 7 in ring

    def test_validation(self):
        with pytest.raises(ConfigError):
            ConsistentHashRing(vnodes=0)
        ring = ConsistentHashRing([0])
        with pytest.raises(FleetError):
            ring.add(0)  # duplicate member
        with pytest.raises(FleetError):
            ring.remove(3)  # never joined
        with pytest.raises(FleetError):
            ConsistentHashRing().owner((1, 2, 3))  # empty ring

    def test_prefix_key(self):
        assert prefix_key([5, 6, 7, 8, 9], 4) == (5, 6, 7, 8)
        assert prefix_key([5, 6], 4) == (5, 6)  # short prompt: whole
        assert prefix_key(np.array([5, 6, 7]), 2) == (5, 6)


class TestDeterminism:
    def test_identical_across_instances(self):
        """Same members => same owner for every key, across fresh
        rings and insertion orders (no process-salted hashing)."""
        keys = _keys(np.random.default_rng(0), 500)
        a = ConsistentHashRing([0, 1, 2, 3])
        b = ConsistentHashRing([3, 1, 0, 2])  # order must not matter
        assert a.placement(keys) == b.placement(keys)

    def test_owner_is_stable(self):
        ring = ConsistentHashRing([0, 1, 2])
        key = (4, 5, 6, 7)
        assert all(ring.owner(key) == ring.owner(key) for _ in range(5))


class TestBalance:
    def test_vnodes_spread_load(self):
        """With virtual nodes every replica owns a non-trivial share."""
        replicas = [0, 1, 2, 3]
        ring = ConsistentHashRing(replicas, vnodes=64)
        keys = _keys(np.random.default_rng(1), 2000)
        owners = list(ring.placement(keys).values())
        for replica in replicas:
            share = owners.count(replica) / len(keys)
            assert 0.05 < share < 0.60, (replica, share)


class TestMinimalMovement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_join_moves_about_one_over_m(self, seed):
        """Adding one replica to M remaps ~K/(M+1) keys, and every
        moved key lands on the newcomer."""
        members = [0, 1, 2]
        keys = _keys(np.random.default_rng(seed), 1500)
        ring = ConsistentHashRing(members)
        before = ring.placement(keys)
        ring.add(3)
        after = ring.placement(keys)
        moved = [k for k in after if after[k] != before[k]]
        expected = len(keys) / (len(members) + 1)
        assert 0 < len(moved) < 2.5 * expected
        assert all(after[k] == 3 for k in moved)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_drain_moves_only_the_leavers_keys(self, seed):
        """Removing a replica moves exactly the keys it owned; every
        other placement is untouched (the drain-time cache guarantee)."""
        keys = _keys(np.random.default_rng(seed + 10), 1500)
        ring = ConsistentHashRing([0, 1, 2, 3])
        before = ring.placement(keys)
        ring.remove(2)
        after = ring.placement(keys)
        for key, owner in before.items():
            if owner != 2:
                assert after[key] == owner
            else:
                assert after[key] != 2

    def test_join_then_leave_roundtrips(self):
        keys = _keys(np.random.default_rng(3), 800)
        ring = ConsistentHashRing([0, 1, 2])
        before = ring.placement(keys)
        ring.add(9)
        ring.remove(9)
        assert ring.placement(keys) == before


class _StubReplica:
    def __init__(self, replica_id, backlog=0):
        self.replica_id = replica_id
        self.backlog_tokens = backlog


class TestRoutingStabilityUnderFailure:
    def test_survivor_placements_do_not_move(self):
        """When a replica fails (on_leave), requests previously hashed
        to survivors keep their owners — only the victim's keys move."""
        routing = PrefixHashRouting(
            prefix_len=4, spill_factor=None
        )
        for replica_id in range(4):
            routing.on_join(replica_id)
        replicas = [_StubReplica(i) for i in range(4)]

        class _Req:
            def __init__(self, prompt, request_id=0):
                self.prompt = prompt
                self.request_id = request_id

        rng = np.random.default_rng(4)
        prompts = {
            tuple(int(t) for t in rng.integers(0, 100, size=4))
            for _ in range(300)
        }
        before = {
            p: replicas[routing.choose(_Req(list(p)), replicas)].replica_id
            for p in prompts
        }
        victim = 2
        routing.on_leave(victim)
        survivors = [r for r in replicas if r.replica_id != victim]
        moved = 0
        for p in prompts:
            owner = survivors[
                routing.choose(_Req(list(p)), survivors)
            ].replica_id
            if before[p] != victim:
                assert owner == before[p]
            else:
                moved += 1
                assert owner != victim
        assert moved > 0
        # The audit counter saw exactly the victim's keys move.
        assert routing.ring_moves == moved


class _Req:
    def __init__(self, prompt, request_id=0):
        self.prompt = prompt
        self.request_id = request_id


class TestWindowedRoutingKey:
    """Regression: with a windowed model the ring must key on the
    effective prefill context, not the raw prompt head — raw-head
    hashing scatters window-equivalent prompts across replicas."""

    WINDOW = 4

    def _routing(self, **kwargs):
        routing = PrefixHashRouting(
            prefix_len=4, spill_factor=None, **kwargs
        )
        for replica_id in range(4):
            routing.on_join(replica_id)
        return routing

    def test_key_is_the_effective_context_head(self):
        routing = self._routing(context_window=self.WINDOW)
        prompt = [1, 2, 3, 10, 11, 12, 13, 99]
        assert routing.routing_key(prompt) == prefix_key(
            effective_prefill_context(prompt, self.WINDOW), 4
        )
        # Default (no window) preserves raw-head keying.
        assert self._routing().routing_key(prompt) == (1, 2, 3, 10)

    def test_window_equivalent_prompts_colocate(self):
        """Prompts identical in the effective window but with
        different early tokens must land on the same replica."""
        routing = self._routing(context_window=self.WINDOW)
        replicas = [_StubReplica(i) for i in range(4)]
        rng = np.random.default_rng(11)
        scattered = 0
        for _ in range(100):
            tail = [int(t) for t in rng.integers(3, 200, size=5)]
            head_a = [int(t) for t in rng.integers(3, 200, size=3)]
            head_b = [int(t) for t in rng.integers(3, 200, size=6)]
            a, b = head_a + tail, head_b + tail
            assert effective_prefill_context(
                a, self.WINDOW
            ) == effective_prefill_context(b, self.WINDOW)
            if routing.choose(_Req(a), replicas) != routing.choose(
                _Req(b), replicas
            ):
                scattered += 1
        assert scattered == 0

    def test_raw_head_keying_scatters_the_same_pairs(self):
        """The bug being fixed: without the window the same pairs
        hash apart (sanity that the fix changes behaviour)."""
        routing = self._routing()
        replicas = [_StubReplica(i) for i in range(4)]
        rng = np.random.default_rng(11)
        scattered = 0
        for _ in range(100):
            tail = [int(t) for t in rng.integers(3, 200, size=5)]
            head_a = [int(t) for t in rng.integers(3, 200, size=3)]
            head_b = [int(t) for t in rng.integers(3, 200, size=6)]
            if routing.choose(
                _Req(head_a + tail), replicas
            ) != routing.choose(_Req(head_b + tail), replicas):
                scattered += 1
        assert scattered > 25

    def test_stale_shared_head_prompts_split(self):
        """Prompts sharing only a head the window has slid past are
        keyed by their (distinct) windows, not glued together."""
        routing = self._routing(context_window=self.WINDOW)
        head = [50, 51, 52, 53]
        a = head + [60, 61, 62, 63, 64]
        b = head + [70, 71, 72, 73, 74]
        assert routing.routing_key(a) != routing.routing_key(b)
        # Raw-head keying would have fused them.
        raw = self._routing()
        assert raw.routing_key(a) == raw.routing_key(b)

    def test_context_window_validation(self):
        with pytest.raises(ConfigError):
            PrefixHashRouting(context_window=0)
