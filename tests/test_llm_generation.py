"""Tests for vanilla autoregressive generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.llm import generate
from repro.llm.generation import sequence_logprobs
from repro.llm.vocab import BOS_ID, EOS_ID


class TestGenerate:
    def test_respects_max_tokens(self, target):
        rng = np.random.default_rng(0)
        out = generate(
            target, [[5, 6]], max_new_tokens=10, temperature=1.0, rng=rng
        )
        assert len(out.responses[0]) <= 10

    def test_bos_prepended(self, target):
        rng = np.random.default_rng(0)
        out = generate(
            target, [[5]], max_new_tokens=3, temperature=1.0, rng=rng
        )
        assert out.prompts[0][0] == BOS_ID

    def test_no_bos_when_disabled(self, target):
        rng = np.random.default_rng(0)
        out = generate(
            target,
            [[5]],
            max_new_tokens=3,
            temperature=1.0,
            rng=rng,
            add_bos=False,
        )
        assert out.prompts[0] == [5]

    def test_finished_iff_eos(self, target):
        rng = np.random.default_rng(1)
        out = generate(
            target,
            [[4, 5]] * 8,
            max_new_tokens=40,
            temperature=1.0,
            rng=rng,
        )
        for resp, fin in zip(out.responses, out.finished):
            assert fin == (bool(resp) and resp[-1] == EOS_ID)

    def test_nothing_after_eos(self, target):
        rng = np.random.default_rng(2)
        out = generate(
            target,
            [[4, 5]] * 8,
            max_new_tokens=60,
            temperature=1.0,
            rng=rng,
        )
        for resp in out.responses:
            if EOS_ID in resp:
                assert resp.index(EOS_ID) == len(resp) - 1

    def test_steps_equal_longest_response(self, target):
        rng = np.random.default_rng(3)
        out = generate(
            target,
            [[4], [9, 10]],
            max_new_tokens=30,
            temperature=1.0,
            rng=rng,
        )
        assert out.model_steps == max(out.response_lengths)

    def test_greedy_deterministic(self, target):
        a = generate(
            target,
            [[7, 8]],
            max_new_tokens=12,
            temperature=0.0,
            rng=np.random.default_rng(0),
        )
        b = generate(
            target,
            [[7, 8]],
            max_new_tokens=12,
            temperature=0.0,
            rng=np.random.default_rng(999),
        )
        assert a.responses == b.responses

    def test_record_probs(self, target):
        rng = np.random.default_rng(4)
        out = generate(
            target,
            [[5, 6]],
            max_new_tokens=5,
            temperature=1.0,
            rng=rng,
            record_probs=True,
        )
        assert len(out.chosen_probs[0]) == len(out.responses[0])
        assert all(0 < p <= 1 for p in out.chosen_probs[0])

    def test_empty_prompts_raise(self, target):
        with pytest.raises(GenerationError):
            generate(
                target,
                [],
                max_new_tokens=5,
                temperature=1.0,
                rng=np.random.default_rng(0),
            )

    def test_bad_max_tokens(self, target):
        with pytest.raises(GenerationError):
            generate(
                target,
                [[5]],
                max_new_tokens=0,
                temperature=1.0,
                rng=np.random.default_rng(0),
            )

    def test_full_sequences_concatenation(self, target):
        rng = np.random.default_rng(5)
        out = generate(
            target, [[5, 6]], max_new_tokens=4, temperature=1.0, rng=rng
        )
        assert out.full_sequences[0] == out.prompts[0] + out.responses[0]

    def test_total_response_tokens(self, target):
        rng = np.random.default_rng(6)
        out = generate(
            target,
            [[5], [6]],
            max_new_tokens=8,
            temperature=1.0,
            rng=rng,
        )
        assert out.total_response_tokens == sum(out.response_lengths)


class TestSequenceLogprobs:
    def test_logprobs_are_negative(self, target):
        rng = np.random.default_rng(7)
        out = generate(
            target, [[5, 6]], max_new_tokens=6, temperature=1.0, rng=rng
        )
        lps = sequence_logprobs(
            target,
            out.full_sequences,
            [len(p) for p in out.prompts],
        )
        assert (lps[0] <= 0).all()
        assert len(lps[0]) == len(out.responses[0])

    def test_matches_recorded_probs(self, target):
        rng = np.random.default_rng(8)
        out = generate(
            target,
            [[5, 6, 7]],
            max_new_tokens=6,
            temperature=0.9,
            rng=rng,
            record_probs=True,
        )
        lps = sequence_logprobs(
            target,
            out.full_sequences,
            [len(p) for p in out.prompts],
            temperature=0.9,
        )
        assert np.allclose(
            np.exp(lps[0]), np.asarray(out.chosen_probs[0]), atol=1e-9
        )

    def test_invalid_prompt_length(self, target):
        with pytest.raises(GenerationError):
            sequence_logprobs(target, [[1, 2, 3]], [3])
