"""Tests for sequence packing (bin packing + cross-contamination)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.spot import (
    first_fit_decreasing,
    pack_sequences,
    packing_efficiency,
    segment_attention_mask,
)


class TestBinPacking:
    def test_fits_exactly(self):
        bins = first_fit_decreasing([4, 4, 4], capacity=8)
        assert len(bins) == 2

    def test_oversized_rejected(self):
        with pytest.raises(ConfigError):
            first_fit_decreasing([10], capacity=8)

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigError):
            first_fit_decreasing([0], capacity=8)

    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=40),
        st.integers(50, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_all_packed_once(self, lengths, capacity):
        bins = first_fit_decreasing(lengths, capacity)
        flat = [i for b in bins for i in b]
        assert sorted(flat) == list(range(len(lengths)))

    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=40),
        st.integers(50, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_capacity_respected(self, lengths, capacity):
        bins = first_fit_decreasing(lengths, capacity)
        for b in bins:
            assert sum(lengths[i] for i in b) <= capacity

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_ffd_within_optimal_bound(self, lengths):
        """FFD uses at most ceil(11/9 OPT + 1) bins; check a loose bound
        vs the volume lower bound."""
        capacity = 60
        bins = first_fit_decreasing(lengths, capacity)
        volume_lower = -(-sum(lengths) // capacity)
        assert len(bins) <= (11 * volume_lower) // 9 + 1


class TestPackSequences:
    def test_roundtrip(self):
        seqs = [[5, 6, 7], [8, 9], [10]]
        packed = pack_sequences(seqs, capacity=6)
        recovered = []
        for row in range(packed.num_rows):
            for seg, source in enumerate(
                packed.source_indices[row], start=1
            ):
                mask = packed.segment_ids[row] == seg
                recovered.append(
                    (source, packed.tokens[row][mask].tolist())
                )
        recovered.sort()
        assert [tokens for _, tokens in recovered] == [
            [5, 6, 7], [8, 9], [10]
        ]

    def test_segments_contiguous(self):
        packed = pack_sequences([[1] * 3, [2] * 2, [3] * 4], capacity=5)
        for row in range(packed.num_rows):
            seg = packed.segment_ids[row]
            content = seg[seg > 0]
            # Segment ids are non-decreasing runs: 1..1 2..2 ...
            assert (np.diff(content) >= 0).all()

    def test_utilization_vs_padding(self):
        packed = pack_sequences([[1] * 10, [1] * 10], capacity=10)
        assert packed.utilization == 1.0
        assert packed.padding_tokens == 0

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            pack_sequences([], capacity=4)


class TestAttentionMask:
    def test_no_cross_contamination(self):
        """The paper's §4.2 requirement: packed sequences never attend to
        each other."""
        packed = pack_sequences([[5, 6], [7, 8, 9]], capacity=5)
        row = 0
        mask = segment_attention_mask(packed.segment_ids[row])
        seg = packed.segment_ids[row]
        for i in range(len(seg)):
            for j in range(len(seg)):
                if mask[i, j]:
                    assert seg[i] == seg[j] != 0
                    assert j <= i

    def test_causal_within_segment(self):
        mask = segment_attention_mask(np.array([1, 1, 1]))
        assert mask[2, 0] and mask[2, 1] and mask[2, 2]
        assert not mask[0, 1]

    def test_padding_attends_nothing(self):
        mask = segment_attention_mask(np.array([1, 1, 0]))
        assert not mask[2].any()

    def test_requires_1d(self):
        with pytest.raises(ConfigError):
            segment_attention_mask(np.zeros((2, 2)))


class TestEfficiency:
    def test_long_tail_gains(self):
        """Figure 17(b): packing ~2x over padded batching for long-tail
        length mixes."""
        rng = np.random.default_rng(0)
        lengths = np.clip(
            rng.lognormal(4.0, 1.0, size=64).astype(int), 1, 512
        )
        vanilla, packed = packing_efficiency(lengths, capacity=512)
        assert packed > 1.8 * vanilla

    def test_uniform_lengths_no_gain(self):
        vanilla, packed = packing_efficiency([64] * 8, capacity=64)
        assert vanilla == pytest.approx(1.0)
        assert packed == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            packing_efficiency([], capacity=8)
