"""Tests for draft-tree construction and tree verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.model import contexts_from_sequences
from repro.llm.sampler import temperature_probs
from repro.specdec import SdStrategy, build_draft_tree, verify_tree
from repro.specdec.engine import _initial_hidden


@pytest.fixture()
def prefix():
    return [1, 5, 7, 9]


class TestStrategyValidation:
    def test_valid(self):
        SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(draft_depth=0, topk=1, tokens_to_verify=4),
            dict(draft_depth=2, topk=0, tokens_to_verify=4),
            dict(draft_depth=2, topk=2, tokens_to_verify=0),
            dict(draft_depth=2, topk=8, tokens_to_verify=4),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SdStrategy(**kwargs)

    def test_describe(self):
        s = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
        assert s.describe() == "D=4 K=2 V=8"


class TestBuildTree:
    def test_budget_respected(self, target, trained_drafter, prefix):
        rng = np.random.default_rng(0)
        strategy = SdStrategy(draft_depth=6, topk=3, tokens_to_verify=12)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        assert len(tree.nodes) <= strategy.tokens_to_verify
        assert tree.num_selected == len(tree.nodes)

    def test_depth_respected(self, target, trained_drafter, prefix):
        rng = np.random.default_rng(1)
        strategy = SdStrategy(draft_depth=2, topk=2, tokens_to_verify=16)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        assert max(n.depth for n in tree.nodes) <= 2

    def test_every_drawn_candidate_has_node(
        self, target, trained_drafter, prefix
    ):
        """Losslessness invariant: no drawn candidate is ever pruned."""
        rng = np.random.default_rng(2)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=10)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        for token in tree.root_candidates:
            assert token in tree.root_children
        for node in tree.nodes:
            for token in node.child_candidates:
                assert token in node.child_nodes
            assert node.selected

    def test_parents_precede_children(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(3)
        strategy = SdStrategy(draft_depth=5, topk=2, tokens_to_verify=14)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        position = {idx: pos for pos, idx in
                    enumerate(tree.selected_indices)}
        for idx in tree.selected_indices:
            parent = tree.nodes[idx].parent
            if parent != -1:
                assert position[parent] < position[idx]

    def test_path_prob_monotone(self, target, trained_drafter, prefix):
        rng = np.random.default_rng(4)
        strategy = SdStrategy(draft_depth=5, topk=2, tokens_to_verify=14)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        for node in tree.nodes:
            if node.parent != -1:
                assert node.path_prob <= tree.nodes[node.parent].path_prob + 1e-12

    def test_topk_mode_children_unique_and_sorted(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(5)
        strategy = SdStrategy(draft_depth=3, topk=3, tokens_to_verify=9)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng,
            child_mode="topk",
        )
        assert len(set(tree.root_candidates)) == len(tree.root_candidates)
        probs = [tree.root_dists[0][t] for t in tree.root_candidates]
        assert probs == sorted(probs, reverse=True)


class TestVerifyTree:
    def test_always_commits_at_least_one_token(
        self, target, untrained_drafter, prefix
    ):
        rng = np.random.default_rng(0)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        hidden = _initial_hidden(target, prefix)
        for _ in range(20):
            tree = build_draft_tree(
                untrained_drafter, prefix, hidden, strategy, 0.9, rng
            )
            result = verify_tree(target, tree, prefix, 0.9, rng)
            assert len(result.accepted_tokens) >= 1
            assert result.accepted_tokens[-1] == result.bonus_token

    def test_accepted_tokens_form_tree_path(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(1)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=10)
        hidden = _initial_hidden(target, prefix)
        for _ in range(20):
            tree = build_draft_tree(
                trained_drafter, prefix, hidden, strategy, 0.9, rng
            )
            result = verify_tree(target, tree, prefix, 0.9, rng)
            children = tree.root_children
            for token in result.accepted_tokens[:-1]:
                assert token in children
                node = tree.nodes[children[token]]
                children = node.child_nodes

    def test_verify_batch_is_selected_plus_root(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(2)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=8)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        result = verify_tree(target, tree, prefix, 0.9, rng)
        assert result.verify_batch == tree.num_selected + 1

    def test_next_hidden_matches_target_recompute(
        self, target, trained_drafter, prefix
    ):
        """The hand-off hidden must equal the exact target hidden at the
        position before the bonus token."""
        rng = np.random.default_rng(3)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        result = verify_tree(target, tree, prefix, 0.9, rng)
        full = prefix + result.accepted_tokens
        ctx = contexts_from_sequences(
            [full[:-1]], target.config.context_window
        )
        _, hiddens = target.step(ctx)
        expected = np.stack([h[0] for h in hiddens], axis=0)
        assert np.allclose(result.next_hidden, expected)

    def test_greedy_tree_matches_greedy_decode(
        self, target, trained_drafter, prefix
    ):
        """At temperature 0 the committed tokens equal greedy decoding."""
        rng = np.random.default_rng(4)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=10)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.0, rng,
            child_mode="topk",
        )
        result = verify_tree(target, tree, prefix, 0.0, rng)
        seq = list(prefix)
        for committed in result.accepted_tokens:
            ctx = contexts_from_sequences(
                [seq], target.config.context_window
            )
            logits, _ = target.step(ctx)
            assert committed == int(np.argmax(logits[0]))
            seq.append(committed)

    def test_first_token_distribution_lossless(
        self, target, untrained_drafter, prefix
    ):
        """Statistical: first committed token ~ analytic target dist even
        with an adversarial (untrained) drafter."""
        temperature = 0.8
        ctx = contexts_from_sequences(
            [prefix], target.config.context_window
        )
        logits, _ = target.step(ctx)
        p_true = temperature_probs(logits[0], temperature)
        rng = np.random.default_rng(5)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        hidden = _initial_hidden(target, prefix)
        n = 6000
        counts = np.zeros(target.config.vocab_size)
        for _ in range(n):
            tree = build_draft_tree(
                untrained_drafter, prefix, hidden, strategy,
                temperature, rng,
            )
            result = verify_tree(target, tree, prefix, temperature, rng)
            counts[result.accepted_tokens[0]] += 1
        mask = p_true * n >= 5
        observed = counts[mask]
        expected = p_true[mask] * n
        tail_mass = p_true[~mask].sum() * n
        if tail_mass > 0:
            observed = np.append(observed, counts[~mask].sum())
            expected = np.append(expected, tail_mass)
        chi2 = float(np.sum((observed - expected) ** 2 / expected))
        # dof ~ len(observed)-1; 99.9th percentile of chi2(24) ~ 51.2
        assert chi2 < 52.0, f"chi2={chi2:.1f}"
