"""Tests for draft-tree construction and tree verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.model import contexts_from_sequences
from repro.llm.sampler import temperature_probs
from repro.specdec import SdStrategy, build_draft_tree, verify_tree
from repro.specdec.engine import _initial_hidden


@pytest.fixture()
def prefix():
    return [1, 5, 7, 9]


class TestStrategyValidation:
    def test_valid(self):
        SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(draft_depth=0, topk=1, tokens_to_verify=4),
            dict(draft_depth=2, topk=0, tokens_to_verify=4),
            dict(draft_depth=2, topk=2, tokens_to_verify=0),
            dict(draft_depth=2, topk=8, tokens_to_verify=4),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SdStrategy(**kwargs)

    def test_describe(self):
        s = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
        assert s.describe() == "D=4 K=2 V=8"


class TestBuildTree:
    def test_budget_respected(self, target, trained_drafter, prefix):
        rng = np.random.default_rng(0)
        strategy = SdStrategy(draft_depth=6, topk=3, tokens_to_verify=12)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        assert len(tree.nodes) <= strategy.tokens_to_verify
        assert tree.num_selected == len(tree.nodes)

    def test_depth_respected(self, target, trained_drafter, prefix):
        rng = np.random.default_rng(1)
        strategy = SdStrategy(draft_depth=2, topk=2, tokens_to_verify=16)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        assert max(n.depth for n in tree.nodes) <= 2

    def test_every_drawn_candidate_has_node(
        self, target, trained_drafter, prefix
    ):
        """Losslessness invariant: no drawn candidate is ever pruned."""
        rng = np.random.default_rng(2)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=10)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        for token in tree.root_candidates:
            assert token in tree.root_children
        for node in tree.nodes:
            for token in node.child_candidates:
                assert token in node.child_nodes
            assert node.selected

    def test_parents_precede_children(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(3)
        strategy = SdStrategy(draft_depth=5, topk=2, tokens_to_verify=14)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        position = {idx: pos for pos, idx in
                    enumerate(tree.selected_indices)}
        for idx in tree.selected_indices:
            parent = tree.nodes[idx].parent
            if parent != -1:
                assert position[parent] < position[idx]

    def test_path_prob_monotone(self, target, trained_drafter, prefix):
        rng = np.random.default_rng(4)
        strategy = SdStrategy(draft_depth=5, topk=2, tokens_to_verify=14)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        for node in tree.nodes:
            if node.parent != -1:
                assert node.path_prob <= tree.nodes[node.parent].path_prob + 1e-12

    def test_topk_mode_children_unique_and_sorted(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(5)
        strategy = SdStrategy(draft_depth=3, topk=3, tokens_to_verify=9)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng,
            child_mode="topk",
        )
        assert len(set(tree.root_candidates)) == len(tree.root_candidates)
        probs = [tree.root_dists[0][t] for t in tree.root_candidates]
        assert probs == sorted(probs, reverse=True)


class TestVerifyTree:
    def test_always_commits_at_least_one_token(
        self, target, untrained_drafter, prefix
    ):
        rng = np.random.default_rng(0)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        hidden = _initial_hidden(target, prefix)
        for _ in range(20):
            tree = build_draft_tree(
                untrained_drafter, prefix, hidden, strategy, 0.9, rng
            )
            result = verify_tree(target, tree, prefix, 0.9, rng)
            assert len(result.accepted_tokens) >= 1
            assert result.accepted_tokens[-1] == result.bonus_token

    def test_accepted_tokens_form_tree_path(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(1)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=10)
        hidden = _initial_hidden(target, prefix)
        for _ in range(20):
            tree = build_draft_tree(
                trained_drafter, prefix, hidden, strategy, 0.9, rng
            )
            result = verify_tree(target, tree, prefix, 0.9, rng)
            children = tree.root_children
            for token in result.accepted_tokens[:-1]:
                assert token in children
                node = tree.nodes[children[token]]
                children = node.child_nodes

    def test_verify_batch_is_selected_plus_root(
        self, target, trained_drafter, prefix
    ):
        rng = np.random.default_rng(2)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=8)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        result = verify_tree(target, tree, prefix, 0.9, rng)
        assert result.verify_batch == tree.num_selected + 1

    def test_next_hidden_matches_target_recompute(
        self, target, trained_drafter, prefix
    ):
        """The hand-off hidden must equal the exact target hidden at the
        position before the bonus token."""
        rng = np.random.default_rng(3)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.9, rng
        )
        result = verify_tree(target, tree, prefix, 0.9, rng)
        full = prefix + result.accepted_tokens
        ctx = contexts_from_sequences(
            [full[:-1]], target.config.context_window
        )
        _, hiddens = target.step(ctx)
        expected = np.stack([h[0] for h in hiddens], axis=0)
        assert np.allclose(result.next_hidden, expected)

    def test_greedy_tree_matches_greedy_decode(
        self, target, trained_drafter, prefix
    ):
        """At temperature 0 the committed tokens equal greedy decoding."""
        rng = np.random.default_rng(4)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=10)
        hidden = _initial_hidden(target, prefix)
        tree = build_draft_tree(
            trained_drafter, prefix, hidden, strategy, 0.0, rng,
            child_mode="topk",
        )
        result = verify_tree(target, tree, prefix, 0.0, rng)
        seq = list(prefix)
        for committed in result.accepted_tokens:
            ctx = contexts_from_sequences(
                [seq], target.config.context_window
            )
            logits, _ = target.step(ctx)
            assert committed == int(np.argmax(logits[0]))
            seq.append(committed)

    def test_first_token_distribution_lossless(
        self, target, untrained_drafter, prefix
    ):
        """Statistical: first committed token ~ analytic target dist even
        with an adversarial (untrained) drafter."""
        temperature = 0.8
        ctx = contexts_from_sequences(
            [prefix], target.config.context_window
        )
        logits, _ = target.step(ctx)
        p_true = temperature_probs(logits[0], temperature)
        rng = np.random.default_rng(5)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        hidden = _initial_hidden(target, prefix)
        n = 6000
        counts = np.zeros(target.config.vocab_size)
        for _ in range(n):
            tree = build_draft_tree(
                untrained_drafter, prefix, hidden, strategy,
                temperature, rng,
            )
            result = verify_tree(target, tree, prefix, temperature, rng)
            counts[result.accepted_tokens[0]] += 1
        mask = p_true * n >= 5
        observed = counts[mask]
        expected = p_true[mask] * n
        tail_mass = p_true[~mask].sum() * n
        if tail_mass > 0:
            observed = np.append(observed, counts[~mask].sum())
            expected = np.append(expected, tail_mass)
        chi2 = float(np.sum((observed - expected) ** 2 / expected))
        # dof ~ len(observed)-1; 99.9th percentile of chi2(24) ~ 51.2
        assert chi2 < 52.0, f"chi2={chi2:.1f}"


# -- flat tensor-tree layout ------------------------------------------------


from repro.specdec import (  # noqa: E402  (grouped with the flat tests)
    FlatDraftTree,
    GrowMap,
    build_draft_trees,
    verify_trees,
)
from repro.specdec.engine import _initial_hidden as _hidden_of  # noqa: E402

FLAT_STRATEGIES = [
    SdStrategy(draft_depth=2, topk=2, tokens_to_verify=4),
    SdStrategy(draft_depth=4, topk=3, tokens_to_verify=8),
    SdStrategy(draft_depth=5, topk=2, tokens_to_verify=12),
]


def _prefixes_and_hiddens(target):
    prefixes = [[3, 5, 7, 2], [4, 4, 9], [1, 2], [8, 6, 5, 3, 2]]
    hiddens = [_hidden_of(target, p) for p in prefixes]
    return prefixes, hiddens


class TestGrowMap:
    def test_from_strategy_layout(self):
        grow = GrowMap.from_strategy(
            SdStrategy(draft_depth=4, topk=3, tokens_to_verify=8)
        )
        assert grow.depth == 4
        assert grow.branch == 3
        assert grow.level_width == 8  # max(topk, min(V, 32))
        assert grow.capacities == (3, 8, 8, 8)
        assert grow.max_nodes == 27

    def test_wide_budget_is_clamped(self):
        grow = GrowMap.from_strategy(
            SdStrategy(draft_depth=2, topk=2, tokens_to_verify=64)
        )
        assert grow.level_width == 32


class TestFlatRoundTrip:
    @pytest.mark.parametrize("strategy", FLAT_STRATEGIES)
    @pytest.mark.parametrize("child_mode", ["sample", "topk"])
    @pytest.mark.parametrize("seed", [0, 7, 91])
    @pytest.mark.parametrize("temperature", [0.0, 0.9])
    def test_flat_round_trips_to_node_view(
        self, target, trained_drafter, strategy, child_mode, seed,
        temperature,
    ):
        """Flattening a legacy tree and rebuilding the node view keeps
        the selected tokens, parents, depths and verify-row plan."""
        prefixes, hiddens = _prefixes_and_hiddens(target)
        for prefix, hidden in zip(prefixes, hiddens):
            tree = build_draft_tree(
                trained_drafter, prefix, hidden, strategy, temperature,
                np.random.default_rng(seed), child_mode,
            )
            flat = FlatDraftTree.from_draft_tree(tree)
            view = flat.to_node_view()
            assert flat.num_selected == tree.num_selected
            selected = tree.selected_indices
            for flat_i, legacy_i in enumerate(selected):
                node = tree.nodes[legacy_i]
                back = view.nodes[flat_i]
                assert back.token == node.token
                assert back.depth == node.depth
                assert back.path_prob == node.path_prob
                assert np.array_equal(back.draft_dist, node.draft_dist)
                legacy_parent = node.parent
                if legacy_parent == -1:
                    assert back.parent == -1
                else:
                    assert selected[back.parent] == legacy_parent
            legacy_paths, legacy_rows = plan_verify_rows_ref(tree, prefix)
            from repro.specdec.tree import plan_verify_rows
            flat_paths, flat_rows = plan_verify_rows(flat, prefix)
            assert flat_paths == legacy_paths
            assert list(flat_rows.values()) == sorted(flat_rows.values())
            # Round-trip again: the node view flattens back identically.
            again = FlatDraftTree.from_draft_tree(view)
            assert np.array_equal(again.tokens, flat.tokens)
            assert np.array_equal(again.parents, flat.parents)
            assert np.array_equal(again.cand_tokens, flat.cand_tokens)
            assert np.array_equal(again.cand_child, flat.cand_child)
            assert np.array_equal(again.cand_offsets, flat.cand_offsets)

    @pytest.mark.parametrize("child_mode", ["sample", "topk"])
    @pytest.mark.parametrize("seed", [3, 42])
    def test_batched_build_bitwise_equals_per_node(
        self, target, trained_drafter, child_mode, seed
    ):
        """The lock-step batched build produces byte-identical flat
        trees to flattening per-node builds under the same seeds, and
        verification commits identical tokens from either."""
        strategy = SdStrategy(draft_depth=4, topk=3, tokens_to_verify=8)
        temperature = 0.8
        prefixes, hiddens = _prefixes_and_hiddens(target)
        rngs_a = [
            np.random.default_rng(seed + i) for i in range(len(prefixes))
        ]
        rngs_b = [
            np.random.default_rng(seed + i) for i in range(len(prefixes))
        ]
        legacy = [
            build_draft_tree(
                trained_drafter, p, h, strategy, temperature, r,
                child_mode,
            )
            for p, h, r in zip(prefixes, hiddens, rngs_a)
        ]
        trees, launches = build_draft_trees(
            trained_drafter, prefixes, hiddens, strategy, temperature,
            rngs_b, child_mode,
        )
        assert launches >= 1
        for reference, flat in zip(
            map(FlatDraftTree.from_draft_tree, legacy), trees
        ):
            assert np.array_equal(reference.tokens, flat.tokens)
            assert np.array_equal(reference.parents, flat.parents)
            assert np.array_equal(reference.depths, flat.depths)
            assert np.array_equal(reference.path_probs, flat.path_probs)
            assert np.array_equal(
                reference.cand_tokens, flat.cand_tokens
            )
            assert np.array_equal(reference.cand_child, flat.cand_child)
            assert np.array_equal(
                reference.cand_offsets, flat.cand_offsets
            )
            assert np.array_equal(reference.cand_dists, flat.cand_dists)
            assert np.array_equal(
                reference.node_dist_row, flat.node_dist_row
            )
            assert reference.draft_steps == flat.draft_steps
        # The two builds consumed each rng stream identically.
        for ra, rb in zip(rngs_a, rngs_b):
            assert ra.random() == rb.random()
        verify_a = verify_trees(
            target, legacy, prefixes, temperature,
            [np.random.default_rng(seed + 50 + i) for i in range(4)],
        )
        verify_b = verify_trees(
            target, trees, prefixes, temperature,
            [np.random.default_rng(seed + 50 + i) for i in range(4)],
        )
        for a, b in zip(verify_a, verify_b):
            assert a.accepted_tokens == b.accepted_tokens
            assert np.array_equal(a.next_hidden, b.next_hidden)
            assert a.depth_attempts == b.depth_attempts
            assert a.depth_accepts == b.depth_accepts


def plan_verify_rows_ref(tree, prefix):
    """Reference row plan computed from the legacy node view."""
    from repro.specdec.tree import plan_verify_rows

    return plan_verify_rows(tree, prefix)


class TestFlatLayoutInvariants:
    @pytest.fixture()
    def flat(self, target, trained_drafter):
        prefixes, hiddens = _prefixes_and_hiddens(target)
        trees, _ = build_draft_trees(
            trained_drafter, prefixes, hiddens,
            SdStrategy(draft_depth=4, topk=3, tokens_to_verify=8),
            0.9,
            [np.random.default_rng(i) for i in range(len(prefixes))],
            "topk",
        )
        return trees[0]

    def test_level_order(self, flat):
        """Depths are non-decreasing, parents precede children, and
        level_offsets slices exactly the per-depth runs."""
        depths = flat.depths
        assert all(depths[i] <= depths[i + 1] for i in range(len(depths) - 1))
        for i in range(flat.num_nodes):
            assert int(flat.parents[i]) < i
        for depth in range(1, flat.max_depth + 1):
            rows = flat.level_slice(depth)
            assert all(int(d) == depth for d in flat.depths[rows])
        assert int(flat.level_offsets[0]) == 0
        assert int(flat.level_offsets[-1]) == flat.num_nodes

    def test_ancestor_matrix(self, flat):
        mask = flat.ancestor_matrix()
        assert mask.shape == (flat.num_nodes, flat.num_nodes)
        for i in range(flat.num_nodes):
            # Row i marks exactly the root-to-i path.
            path = {i}
            j = int(flat.parents[i])
            while j != -1:
                path.add(j)
                j = int(flat.parents[j])
            assert set(np.flatnonzero(mask[i]).tolist()) == path
        # Ancestor rows count matches each node's depth.
        assert np.array_equal(mask.sum(axis=1), flat.depths)

    def test_children_and_dist_rows(self, flat):
        for i in range(flat.num_nodes):
            for child in flat.children_of(i):
                assert int(flat.parents[child]) == i
            dist_row = int(flat.node_dist_row[i])
            assert int(flat.cand_tokens[dist_row]) == int(flat.tokens[i])
            assert int(flat.cand_child[dist_row]) == i

    def test_level_slice_bounds(self, flat):
        from repro.errors import SpecDecodeError
        with pytest.raises(SpecDecodeError):
            flat.level_slice(0)
        with pytest.raises(SpecDecodeError):
            flat.level_slice(flat.max_depth + 1)

    def test_build_draft_trees_validates_lengths(self, trained_drafter):
        from repro.errors import SpecDecodeError
        with pytest.raises(SpecDecodeError):
            build_draft_trees(
                trained_drafter, [[1, 2]], [None, None],
                SdStrategy(draft_depth=2, topk=2, tokens_to_verify=4),
                0.5, [np.random.default_rng(0)],
            )

    def test_empty_batch(self, trained_drafter):
        trees, launches = build_draft_trees(
            trained_drafter, [], [],
            SdStrategy(draft_depth=2, topk=2, tokens_to_verify=4),
            0.5, [],
        )
        assert trees == [] and launches == 0
