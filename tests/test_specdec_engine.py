"""Tests for the end-to-end speculative generation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpecDecodeError
from repro.llm import TinyLM, TinyLMConfig, generate
from repro.llm.model import contexts_from_sequences
from repro.llm.sampler import temperature_probs
from repro.llm.vocab import EOS_ID
from repro.specdec import SdStrategy, speculative_generate
from repro.specdec.linear import linear_decode_step
from repro.specdec.engine import _initial_hidden


@pytest.fixture()
def strategy():
    return SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


class TestSpeculativeGenerate:
    def test_respects_cap(self, target, trained_drafter, strategy):
        rng = np.random.default_rng(0)
        out = speculative_generate(
            target, trained_drafter, [[5, 6]], max_new_tokens=8,
            temperature=0.9, rng=rng, strategy=strategy,
        )
        assert len(out.responses[0]) <= 8

    def test_nothing_after_eos(self, target, trained_drafter, strategy):
        rng = np.random.default_rng(1)
        out = speculative_generate(
            target, trained_drafter, [[5, 6]] * 6, max_new_tokens=60,
            temperature=0.9, rng=rng, strategy=strategy,
        )
        for resp in out.responses:
            if EOS_ID in resp:
                assert resp.index(EOS_ID) == len(resp) - 1

    def test_finished_flags(self, target, trained_drafter, strategy):
        rng = np.random.default_rng(2)
        out = speculative_generate(
            target, trained_drafter, [[5, 6]] * 6, max_new_tokens=60,
            temperature=0.9, rng=rng, strategy=strategy,
        )
        for resp, fin in zip(out.responses, out.finished):
            assert fin == (bool(resp) and resp[-1] == EOS_ID)

    def test_fewer_target_steps_than_tokens(
        self, target, trained_drafter, strategy
    ):
        """The whole point of SD: fewer target launches than tokens."""
        rng = np.random.default_rng(3)
        out = speculative_generate(
            target, trained_drafter, [[5, 6, 7]], max_new_tokens=40,
            temperature=0.9, rng=rng, strategy=strategy,
        )
        total = sum(out.response_lengths)
        if total > 10:  # only meaningful for non-trivial generations
            assert out.target_steps < total + 2

    def test_accept_length_at_least_one(
        self, target, untrained_drafter, strategy
    ):
        rng = np.random.default_rng(4)
        out = speculative_generate(
            target, untrained_drafter, [[5, 6]] * 4, max_new_tokens=30,
            temperature=0.9, rng=rng, strategy=strategy,
        )
        assert out.metrics.mean_accept_length >= 1.0

    def test_trained_beats_untrained_accept_length(
        self, target, trained_drafter, untrained_drafter, strategy
    ):
        # Lower temperature sharpens the target distribution, where an
        # aligned drafter clearly separates from a random one.
        prompts = [[5, 6, 7], [9, 10, 11], [4, 8, 12], [13, 14, 15]] * 4
        out_t = speculative_generate(
            target, trained_drafter, prompts, max_new_tokens=40,
            temperature=0.5, rng=np.random.default_rng(5),
            strategy=strategy,
        )
        out_u = speculative_generate(
            target, untrained_drafter, prompts, max_new_tokens=40,
            temperature=0.5, rng=np.random.default_rng(5),
            strategy=strategy,
        )
        assert (
            out_t.metrics.mean_accept_length
            > out_u.metrics.mean_accept_length
        )

    def test_bad_max_tokens(self, target, trained_drafter, strategy):
        with pytest.raises(SpecDecodeError):
            speculative_generate(
                target, trained_drafter, [[5]], max_new_tokens=0,
                temperature=0.9, rng=np.random.default_rng(0),
                strategy=strategy,
            )

    def test_linear_mode(self, target, trained_drafter, strategy):
        rng = np.random.default_rng(6)
        out = speculative_generate(
            target, trained_drafter, [[5, 6]], max_new_tokens=20,
            temperature=0.9, rng=rng, strategy=strategy, use_tree=False,
        )
        assert out.metrics.mean_accept_length >= 1.0

    def test_greedy_matches_vanilla_exactly(
        self, target, trained_drafter, strategy
    ):
        """Greedy speculative output must equal greedy vanilla decoding."""
        vanilla = generate(
            target, [[9, 10, 11]], max_new_tokens=25, temperature=0.0,
            rng=np.random.default_rng(0),
        )
        sd = speculative_generate(
            target, trained_drafter, [[9, 10, 11]], max_new_tokens=25,
            temperature=0.0, rng=np.random.default_rng(1),
            strategy=strategy, child_mode="topk",
        )
        assert sd.responses == vanilla.responses


class TestLosslessnessStatistical:
    def test_two_token_joint_matches_analytic(
        self, target, untrained_drafter
    ):
        """Joint dist of the first two generated tokens ~ analytic."""
        temperature = 0.8
        prompt = [5, 7]
        prefix = [1, 5, 7]  # BOS prepended by the engine
        k = target.config.context_window

        def p_next(seq):
            ctx = contexts_from_sequences([seq], k)
            logits, _ = target.step(ctx)
            return temperature_probs(logits[0], temperature)

        v = target.config.vocab_size
        p1 = p_next(prefix)
        analytic = {(EOS_ID,): p1[EOS_ID]}
        for a in range(v):
            if a == EOS_ID:
                continue
            p2 = p_next(prefix + [a])
            for b in range(v):
                analytic[(a, b)] = p1[a] * p2[b]

        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        n = 5000
        counts: dict = {}
        rng = np.random.default_rng(17)
        for _ in range(n):
            out = speculative_generate(
                target, untrained_drafter, [prompt], max_new_tokens=2,
                temperature=temperature, rng=rng, strategy=strategy,
            )
            key = tuple(out.responses[0])
            counts[key] = counts.get(key, 0) + 1

        keys = list(analytic)
        expected = np.array([analytic[key] * n for key in keys])
        observed = np.array(
            [counts.get(key, 0) for key in keys], dtype=float
        )
        mask = expected >= 5
        obs = np.append(observed[mask], observed[~mask].sum())
        exp = np.append(expected[mask], expected[~mask].sum())
        exp *= obs.sum() / exp.sum()
        chi2 = float(np.sum((obs - exp) ** 2 / exp))
        dof = len(obs) - 1
        # Very loose bound: mean + 6*sqrt(2*dof) covers far past 99.99%.
        assert chi2 < dof + 6 * np.sqrt(2 * dof), f"chi2={chi2:.1f} dof={dof}"


class TestLinearStep:
    def test_chain_prefix_structure(self, target, trained_drafter):
        prefix = [1, 5, 7, 9]
        rng = np.random.default_rng(0)
        hidden = _initial_hidden(target, prefix)
        result = linear_decode_step(
            target, trained_drafter, prefix, hidden, draft_depth=4,
            temperature=0.9, rng=rng,
        )
        assert result.accepted_count <= result.drafted_count
        assert len(result.accepted_tokens) == result.accepted_count + 1
        # accept_flags: accepted prefix then at most one rejection
        flags = result.accept_flags
        if False in flags:
            first_reject = flags.index(False)
            assert all(flags[:first_reject])
            assert len(flags) == first_reject + 1

    def test_invalid_depth(self, target, trained_drafter):
        with pytest.raises(SpecDecodeError):
            linear_decode_step(
                target, trained_drafter, [1, 2], None, draft_depth=0,
                temperature=1.0, rng=np.random.default_rng(0),
            )

    def test_empty_prefix_raises(self, target, trained_drafter):
        with pytest.raises(SpecDecodeError):
            linear_decode_step(
                target, trained_drafter, [], None, draft_depth=2,
                temperature=1.0, rng=np.random.default_rng(0),
            )
