"""Tests for the end-to-end system models (Figure 11 shapes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, StepWorkload
from repro.errors import ConfigError
from repro.hardware import get_gpu, get_model
from repro.systems import (
    OpenR1System,
    TltBaseSystem,
    TltSystem,
    VerlSystem,
)
from repro.workload import LognormalLengths


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    lengths = LognormalLengths(
        median=2500, sigma=1.15, cap=32768
    ).sample(rng, 256)
    return StepWorkload(lengths=lengths.tolist(), prompt_tokens=512)


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec(
        num_workers=16, gpus_per_worker=4, gpu=get_gpu("H100")
    )


@pytest.fixture(scope="module")
def reports(workload, cluster):
    model = get_model("Qwen2.5-7B")
    out = {}
    for cls in [OpenR1System, VerlSystem, TltBaseSystem, TltSystem]:
        out[cls.name] = cls(model, cluster).simulate_step(workload)
    return out


class TestFigure11Shape:
    def test_ordering(self, reports):
        """Open-R1 << VeRL < TLT-Base < TLT."""
        assert (
            reports["Open-R1"].throughput_tps
            < reports["VeRL"].throughput_tps
            < reports["TLT-Base"].throughput_tps
            < reports["TLT"].throughput_tps
        )

    def test_tlt_speedup_in_paper_range(self, reports):
        ratio = (
            reports["TLT"].throughput_tps
            / reports["VeRL"].throughput_tps
        )
        assert 1.5 < ratio < 2.4

    def test_tlt_base_speedup_in_paper_range(self, reports):
        ratio = (
            reports["TLT-Base"].throughput_tps
            / reports["VeRL"].throughput_tps
        )
        assert 1.1 < ratio < 1.7

    def test_openr1_order_of_magnitude_behind(self, reports):
        ratio = (
            reports["Open-R1"].throughput_tps
            / reports["VeRL"].throughput_tps
        )
        assert ratio < 0.4

    def test_tlt_harvests_drafter_updates(self, reports):
        assert reports["TLT"].drafter_updates > 0
        assert reports["VeRL"].drafter_updates == 0

    def test_phase_keys(self, reports):
        for report in reports.values():
            assert set(report.phases) == {
                "rollout", "inference", "training", "transition",
            }


class TestOpenR1:
    def test_waves_slow_rollout(self, workload, cluster):
        model = get_model("Qwen2.5-7B")
        few = OpenR1System(
            model, cluster, rollout_waves=1
        ).simulate_step(workload)
        many = OpenR1System(
            model, cluster, rollout_waves=8
        ).simulate_step(workload)
        assert many.phases["rollout"] > few.phases["rollout"]

    def test_validation(self, cluster):
        model = get_model("Qwen2.5-7B")
        with pytest.raises(ConfigError):
            OpenR1System(model, cluster, rollout_waves=0)
        single = ClusterSpec(
            num_workers=1, gpus_per_worker=4, gpu=get_gpu("H100")
        )
        with pytest.raises(ConfigError):
            OpenR1System(model, single)


class TestScalingBehaviour:
    def test_tlt_gain_grows_with_cluster(self, workload):
        """Table 3's trend: more nodes -> larger TLT speedup."""
        model = get_model("Qwen2.5-7B")

        def ratio(workers):
            cluster = ClusterSpec(
                num_workers=workers, gpus_per_worker=4,
                gpu=get_gpu("H100"),
            )
            verl = VerlSystem(model, cluster).simulate_step(workload)
            tlt = TltSystem(model, cluster).simulate_step(workload)
            return tlt.throughput_tps / verl.throughput_tps

        assert ratio(16) > ratio(2)

    def test_a100_also_gains(self, workload):
        """Figure 11's A100 panel: gains persist across GPU generations."""
        model = get_model("Qwen2.5-7B")
        cluster = ClusterSpec(
            num_workers=16, gpus_per_worker=4, gpu=get_gpu("A100")
        )
        verl = VerlSystem(model, cluster).simulate_step(workload)
        tlt = TltSystem(model, cluster).simulate_step(workload)
        assert tlt.throughput_tps / verl.throughput_tps > 1.4
