"""Tests for the RL training loop (GRPO and friends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.drafter import EagleDrafter, EagleDrafterConfig
from repro.llm import TinyLM, TinyLMConfig
from repro.llm.vocab import Vocabulary
from repro.rl import (
    DapoAdvantages,
    RlConfig,
    RlTrainer,
    RlooAdvantages,
    SpeculativeRollout,
    VanillaRollout,
)
from repro.specdec import SdStrategy
from repro.workload import SuccessorChainTask


def make_policy(seed=0):
    cfg = TinyLMConfig(
        vocab_size=24, hidden_size=20, context_window=4, num_layers=3,
        init_scale=1.0,
    )
    return TinyLM(cfg, np.random.default_rng(seed))


def make_task():
    return SuccessorChainTask(vocab=Vocabulary(24), target_pairs=8)


def small_config(**overrides):
    base = dict(
        num_prompts=4, group_size=6, max_new_tokens=20,
        temperature=1.0, learning_rate=5e-3, kl_coef=0.002,
    )
    base.update(overrides)
    return RlConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_prompts=0),
            dict(group_size=0),
            dict(max_new_tokens=0),
            dict(temperature=0.0),
            dict(learning_rate=0.0),
            dict(kl_coef=-1.0),
            dict(kl_estimator="k9"),
            dict(inner_epochs=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            small_config(**kwargs)


class TestTrainerMechanics:
    def test_step_report_fields(self):
        trainer = RlTrainer(
            make_policy(), make_task(), small_config(),
            rng=np.random.default_rng(0),
        )
        report = trainer.step()
        assert 0.0 <= report.mean_reward <= 1.0
        assert report.max_response_length <= 20
        assert report.target_steps > 0
        assert trainer.steps_done == 1

    def test_reference_model_frozen(self):
        trainer = RlTrainer(
            make_policy(), make_task(), small_config(),
            rng=np.random.default_rng(0),
        )
        ref_before = trainer.reference.params.copy()
        trainer.run(3)
        assert trainer.reference.params.max_abs_diff(ref_before) == 0.0
        assert (
            trainer.policy.params.max_abs_diff(ref_before) > 0.0
        )

    def test_learning_improves_reward(self):
        """GRPO must genuinely learn the successor-chain task."""
        trainer = RlTrainer(
            make_policy(), make_task(),
            small_config(num_prompts=8, group_size=8,
                         max_new_tokens=28, learning_rate=6e-3),
            rng=np.random.default_rng(1),
        )
        reports = trainer.run(120)
        first = np.mean([r.mean_reward for r in reports[:10]])
        last = np.mean([r.mean_reward for r in reports[-10:]])
        assert last > first + 0.05

    def test_kl_grows_from_zero(self):
        trainer = RlTrainer(
            make_policy(), make_task(), small_config(),
            rng=np.random.default_rng(0),
        )
        reports = trainer.run(5)
        assert reports[0].kl_value == pytest.approx(0.0, abs=1e-6)
        assert reports[-1].kl_value > 0.0

    def test_evaluate(self):
        trainer = RlTrainer(
            make_policy(), make_task(), small_config(),
            rng=np.random.default_rng(0),
        )
        score = trainer.evaluate(8, np.random.default_rng(5))
        assert 0.0 <= score <= 1.0

    def test_inner_epochs_with_clipping(self):
        trainer = RlTrainer(
            make_policy(), make_task(),
            small_config(inner_epochs=2, clip_eps=0.2),
            rng=np.random.default_rng(0),
        )
        report = trainer.step()
        assert report.mean_reward >= 0.0

    def test_rloo_runs(self):
        trainer = RlTrainer(
            make_policy(), make_task(), small_config(),
            algorithm=RlooAdvantages(),
            rng=np.random.default_rng(0),
        )
        trainer.run(2)

    def test_dapo_active_fraction(self):
        trainer = RlTrainer(
            make_policy(), make_task(), small_config(),
            algorithm=DapoAdvantages(),
            rng=np.random.default_rng(0),
        )
        report = trainer.step()
        assert 0.0 <= report.active_fraction <= 1.0


class TestSpeculativeBackend:
    def test_sd_backend_runs_and_reports(self):
        policy = make_policy()
        drafter = EagleDrafter(
            policy, EagleDrafterConfig(), np.random.default_rng(3)
        )
        backend = SpeculativeRollout(
            drafter,
            SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6),
        )
        trainer = RlTrainer(
            policy, make_task(), small_config(num_prompts=2, group_size=4),
            backend=backend, rng=np.random.default_rng(0),
        )
        report = trainer.step()
        assert "accept_length" in report.rollout_stats
        assert report.rollout_stats["accept_length"] >= 1.0

    def test_sd_and_vanilla_learning_curves_similar(self):
        """Figure 12's claim at miniature scale: same-seed prompt streams
        with vanilla vs speculative rollouts learn equally well."""
        def run(backend_factory, seed):
            policy = make_policy(seed=7)
            backend = backend_factory(policy)
            trainer = RlTrainer(
                policy, make_task(),
                small_config(num_prompts=6, group_size=6,
                             max_new_tokens=24, learning_rate=6e-3),
                backend=backend, rng=np.random.default_rng(seed),
            )
            reports = trainer.run(25)
            return np.mean([r.mean_reward for r in reports[-5:]])

        vanilla_score = run(lambda p: VanillaRollout(), seed=11)

        def sd_backend(policy):
            drafter = EagleDrafter(
                policy, EagleDrafterConfig(), np.random.default_rng(5)
            )
            return SpeculativeRollout(
                drafter,
                SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6),
            )

        sd_score = run(sd_backend, seed=11)
        assert abs(sd_score - vanilla_score) < 0.15
