"""Tests for statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    OnlineMeanVar,
    SlidingWindow,
    describe,
    exponential_moving_average,
    geometric_mean,
    percentile,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestEma:
    def test_first_value_passthrough(self):
        assert exponential_moving_average([5.0, 5.0], 0.5) == [5.0, 5.0]

    def test_alpha_one_is_identity(self):
        values = [1.0, 7.0, 3.0]
        assert exponential_moving_average(values, 1.0) == values

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            exponential_moving_average([1.0], 0.0)

    def test_smoothing_reduces_jump(self):
        out = exponential_moving_average([0.0, 10.0], 0.3)
        assert out[1] == pytest.approx(3.0)


class TestDescribe:
    def test_keys_and_values(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])


class TestOnlineMeanVar:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=100)
        acc = OnlineMeanVar()
        acc.update_many(data)
        assert acc.mean == pytest.approx(float(np.mean(data)))
        assert acc.variance == pytest.approx(float(np.var(data)))

    def test_empty_variance_zero(self):
        assert OnlineMeanVar().variance == 0.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    def test_property_matches_numpy(self, values):
        acc = OnlineMeanVar()
        acc.update_many(values)
        assert acc.mean == pytest.approx(float(np.mean(values)), abs=1e-6)
        assert acc.std == pytest.approx(float(np.std(values)), abs=1e-6)


class TestSlidingWindow:
    def test_eviction_at_capacity(self):
        win = SlidingWindow(3)
        for v in [1, 2, 3, 4]:
            win.append(v)
        assert win.values() == [2, 3, 4]

    def test_median(self):
        win = SlidingWindow(5)
        for v in [5, 1, 3]:
            win.append(v)
        assert win.median() == 3

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            SlidingWindow(2).median()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_len_and_iter(self):
        win = SlidingWindow(4)
        win.append(1.0)
        win.append(2.0)
        assert len(win) == 2
        assert list(win) == [1.0, 2.0]

    def test_is_empty(self):
        win = SlidingWindow(2)
        assert win.is_empty
        win.append(0.0)
        assert not win.is_empty

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30),
           st.integers(1, 10))
    def test_property_window_is_suffix(self, values, capacity):
        win = SlidingWindow(capacity)
        for v in values:
            win.append(v)
        assert win.values() == values[-capacity:]
