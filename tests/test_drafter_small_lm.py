"""Tests for the vanilla small-LM drafter and its distiller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter.small_lm import (
    DistillationConfig,
    SmallLmDistiller,
    SmallLmDrafter,
)
from repro.errors import DrafterError
from repro.llm import TinyLM, TinyLMConfig, generate
from repro.specdec import SdStrategy, speculative_generate


def make_small(target, seed=0):
    cfg = TinyLMConfig(
        vocab_size=target.config.vocab_size,
        hidden_size=8,
        context_window=3,
        num_layers=2,
        init_scale=1.0,
    )
    return SmallLmDrafter(
        TinyLM(cfg, np.random.default_rng(seed)),
        target.config.vocab_size,
    )


class TestProtocol:
    def test_vocab_mismatch_rejected(self, target):
        cfg = TinyLMConfig(vocab_size=16, hidden_size=8)
        with pytest.raises(DrafterError):
            SmallLmDrafter(
                TinyLM(cfg, np.random.default_rng(0)),
                target.config.vocab_size,
            )

    def test_propose_distribution(self, target):
        drafter = make_small(target)
        state = drafter.begin([1, 5, 6], None)
        probs = drafter.propose(state, 0.9)
        assert probs.sum() == pytest.approx(1.0)

    def test_extend_shifts_window(self, target):
        drafter = make_small(target)
        state = drafter.begin([1, 5, 6], None)
        state = drafter.extend(state, 9)
        assert state.context == (5, 6, 9)

    def test_empty_prefix_raises(self, target):
        drafter = make_small(target)
        with pytest.raises(DrafterError):
            drafter.begin([], None)

    def test_usable_for_speculation(self, target):
        drafter = make_small(target)
        out = speculative_generate(
            target, drafter, [[5, 6]], max_new_tokens=20,
            temperature=0.9, rng=np.random.default_rng(0),
            strategy=SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6),
        )
        assert out.metrics.mean_accept_length >= 1.0


class TestDistillation:
    @pytest.fixture()
    def training_data(self, target):
        rng = np.random.default_rng(1)
        prompts = [list(rng.integers(3, 24, size=3)) for _ in range(12)]
        return generate(
            target, prompts, max_new_tokens=30, temperature=0.9, rng=rng
        ).full_sequences

    @pytest.mark.parametrize("mode", ["sft", "kd", "reverse_kd"])
    def test_loss_decreases(self, target, training_data, mode):
        drafter = make_small(target)
        distiller = SmallLmDistiller(
            drafter, target, DistillationConfig(mode=mode)
        )
        losses = [
            distiller.train_step(training_data) for _ in range(30)
        ]
        assert losses[-1] < losses[0]

    def test_distillation_improves_acceptance(self, target, training_data):
        drafter = make_small(target)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        prompts = [[5, 6, 7]] * 8

        def accept_len():
            out = speculative_generate(
                target, drafter, prompts, max_new_tokens=30,
                temperature=0.9, rng=np.random.default_rng(2),
                strategy=strategy,
            )
            return out.metrics.mean_accept_length

        before = accept_len()
        distiller = SmallLmDistiller(
            drafter, target, DistillationConfig(mode="kd")
        )
        for _ in range(120):
            distiller.train_step(training_data)
        after = accept_len()
        assert after > before

    def test_bad_mode(self):
        with pytest.raises(DrafterError):
            DistillationConfig(mode="magic")

    def test_too_short_sequences(self, target):
        drafter = make_small(target)
        distiller = SmallLmDistiller(
            drafter, target, DistillationConfig()
        )
        with pytest.raises(DrafterError):
            distiller.train_step([[1, 2]])
