"""Tests for KL estimators and advantage estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigError
from repro.rl import (
    DapoAdvantages,
    GrpoAdvantages,
    ReinforceAdvantages,
    ReinforcePlusPlusAdvantages,
    RlooAdvantages,
    kl_estimate,
    kl_grad_coef,
)

logp_arrays = hnp.arrays(
    dtype=np.float64, shape=st.tuples(st.integers(1, 20)),
    elements=st.floats(-10, 0),
)


class TestKlEstimators:
    def test_zero_when_identical(self):
        logp = np.array([-1.0, -2.0])
        for kind in ("k1", "k2", "k3"):
            assert np.allclose(kl_estimate(logp, logp, kind), 0.0)

    @given(logp_arrays, logp_arrays)
    @settings(max_examples=40, deadline=None)
    def test_k2_k3_nonnegative(self, logp, logp_ref):
        if logp.shape != logp_ref.shape:
            return
        assert (kl_estimate(logp, logp_ref, "k2") >= 0).all()
        assert (kl_estimate(logp, logp_ref, "k3") >= -1e-12).all()

    def test_k1_is_log_ratio(self):
        logp = np.array([-1.0])
        ref = np.array([-3.0])
        assert kl_estimate(logp, ref, "k1")[0] == pytest.approx(2.0)

    def test_k3_unbiasedness(self):
        """E_p[k3] equals the true KL(p||q) for known distributions."""
        rng = np.random.default_rng(0)
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.4, 0.4, 0.2])
        true_kl = float(np.sum(p * np.log(p / q)))
        draws = rng.choice(3, size=200_000, p=p)
        est = kl_estimate(
            np.log(p[draws]), np.log(q[draws]), "k3"
        ).mean()
        assert est == pytest.approx(true_kl, abs=0.01)

    def test_grad_coef_matches_finite_difference(self):
        logp = np.array([-1.3])
        ref = np.array([-0.7])
        eps = 1e-6
        for kind in ("k1", "k2", "k3"):
            up = kl_estimate(logp + eps, ref, kind)
            down = kl_estimate(logp - eps, ref, kind)
            numeric = (up - down) / (2 * eps)
            assert kl_grad_coef(logp, ref, kind)[0] == pytest.approx(
                numeric[0], rel=1e-4
            )

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            kl_estimate(np.zeros(1), np.zeros(1), "k9")

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            kl_estimate(np.zeros(2), np.zeros(3))


class TestGrpo:
    def test_group_mean_zero(self):
        rewards = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 6.0]])
        adv, mask = GrpoAdvantages().compute(rewards)
        assert np.allclose(adv.mean(axis=1), 0.0, atol=1e-9)
        assert mask.all()

    def test_normalized_scale(self):
        rewards = np.array([[0.0, 1.0]])
        adv, _ = GrpoAdvantages().compute(rewards)
        assert adv[0, 1] == pytest.approx(1.0, abs=1e-4)

    def test_without_std_normalization(self):
        rewards = np.array([[0.0, 4.0]])
        adv, _ = GrpoAdvantages(normalize_std=False).compute(rewards)
        assert adv[0, 1] == pytest.approx(2.0)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(0, 1),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mean_zero(self, rewards):
        adv, _ = GrpoAdvantages().compute(rewards)
        assert np.allclose(adv.mean(axis=1), 0.0, atol=1e-7)

    def test_requires_2d(self):
        with pytest.raises(ConfigError):
            GrpoAdvantages().compute(np.zeros(4))


class TestRloo:
    def test_leave_one_out_baseline(self):
        rewards = np.array([[1.0, 2.0, 3.0]])
        adv, _ = RlooAdvantages().compute(rewards)
        # A_0 = 1 - (2+3)/2 = -1.5
        assert adv[0, 0] == pytest.approx(-1.5)
        assert adv[0, 2] == pytest.approx(1.5)

    def test_needs_group_of_two(self):
        with pytest.raises(ConfigError):
            RlooAdvantages().compute(np.array([[1.0]]))

    def test_sum_zero(self):
        rng = np.random.default_rng(0)
        rewards = rng.random((4, 6))
        adv, _ = RlooAdvantages().compute(rewards)
        assert np.allclose(adv.sum(axis=1), 0.0, atol=1e-9)


class TestReinforce:
    def test_baseline_tracks_mean(self):
        est = ReinforceAdvantages(baseline_alpha=1.0)
        est.compute(np.array([[1.0, 1.0]]))
        adv, _ = est.compute(np.array([[1.0, 3.0]]))
        # Baseline was updated to 1.0 after the first batch.
        assert adv[0, 0] == pytest.approx(0.0)
        assert adv[0, 1] == pytest.approx(2.0)

    def test_plus_plus_whitens_globally(self):
        rewards = np.array([[0.0, 1.0], [2.0, 3.0]])
        adv, _ = ReinforcePlusPlusAdvantages().compute(rewards)
        assert adv.mean() == pytest.approx(0.0, abs=1e-9)
        assert adv.std() == pytest.approx(1.0, abs=1e-3)

    def test_plus_plus_clips(self):
        rewards = np.zeros((1, 100))
        rewards[0, 0] = 1000.0
        adv, _ = ReinforcePlusPlusAdvantages(clip=3.0).compute(rewards)
        assert np.abs(adv).max() <= 3.0


class TestDapo:
    def test_constant_groups_filtered(self):
        rewards = np.array([[0.5, 0.5, 0.5], [0.0, 1.0, 0.5]])
        est = DapoAdvantages()
        adv, mask = est.compute(rewards)
        assert mask[0].sum() == 0
        assert mask[1].sum() == 3
        assert np.allclose(adv[0], 0.0)

    def test_filtered_fraction(self):
        rewards = np.array([[0.5, 0.5], [0.0, 1.0]])
        assert DapoAdvantages().filtered_fraction(rewards) == 0.5
