"""Tests for the engine's incremental step surface and cancellation.

The serving front-end depends on three properties of the refactored
batched engine: driving it cycle-at-a-time through ``start``/``step``
reproduces ``generate`` exactly; requests can be admitted and cancelled
between cycles without perturbing any survivor's committed tokens (the
per-request RNG streams make this checkable token-for-token); and the
scheduler reports queue depth and admission waiting time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter.base import Drafter
from repro.errors import SpecDecodeError
from repro.specdec import (
    BatchedSpecDecodeEngine,
    SdStrategy,
    make_serving_request,
    speculative_generate,
)

PROMPTS = [[5, 6, 7], [9, 10, 11], [4, 8, 12], [13, 14, 15],
           [6, 9, 13], [7, 11, 5], [12, 4, 9], [15, 13, 6]]


@pytest.fixture()
def strategy():
    return SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _engine(target, drafter, strategy, max_batch_size=None, **kwargs):
    return BatchedSpecDecodeEngine(
        target, drafter, strategy, temperature=0.9,
        max_batch_size=max_batch_size, **kwargs,
    )


def _requests(seed=42, max_new_tokens=24, prompts=PROMPTS):
    rng = np.random.default_rng(seed)
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=len(prompts))
    return [
        make_serving_request(
            request_id=i, prompt=prompt, max_new_tokens=max_new_tokens,
            seed=int(seeds[i]),
        )
        for i, prompt in enumerate(prompts)
    ]


class TestStepSurface:
    def test_stepwise_equals_generate(self, target, trained_drafter,
                                      strategy):
        """start + step-until-drained is exactly generate."""
        closed = _engine(target, trained_drafter, strategy, 3)
        reference = closed.generate(
            PROMPTS, 24, np.random.default_rng(42)
        )

        engine = _engine(target, trained_drafter, strategy, 3)
        # generate() draws one seed per request from the master rng;
        # replicate that so both runs share the request streams.
        rng = np.random.default_rng(42)
        requests = engine._make_requests(PROMPTS, 24, rng, True)
        engine.start(requests)
        steps = 0
        while engine.has_work:
            engine.step()
            steps += 1
        result = engine.result()
        assert [s.response for s in result.slots] == [
            s.response for s in reference.slots
        ]
        assert result.target_steps == reference.target_steps
        assert steps == len(reference.cycle_reports)

    def test_step_without_session_raises(self, target, trained_drafter,
                                         strategy):
        engine = _engine(target, trained_drafter, strategy)
        with pytest.raises(SpecDecodeError):
            engine.step()
        assert not engine.has_work
        assert engine.num_live == 0

    def test_step_with_no_work_raises(self, target, trained_drafter,
                                      strategy):
        engine = _engine(target, trained_drafter, strategy)
        engine.start(())
        with pytest.raises(SpecDecodeError):
            engine.step()

    def test_late_admission_tokens_identical(self, target,
                                             trained_drafter, strategy):
        """A request admitted mid-run commits the same tokens as when
        admitted up front — scheduling never touches its stream."""
        requests = _requests()
        upfront = _engine(target, trained_drafter, strategy)
        upfront.start(requests)
        while upfront.has_work:
            upfront.step()
        reference = {
            s.request.request_id: s.response
            for s in upfront.result().slots
        }

        late = _engine(target, trained_drafter, strategy)
        fresh = _requests()
        late.start(fresh[:4])
        late.step()
        late.step()
        for request in fresh[4:]:
            late.admit(request)
        while late.has_work:
            late.step()
        for slot in late.result().slots:
            assert slot.response == reference[slot.request.request_id]


class TestCancellation:
    def _drain(self, engine):
        while engine.has_work:
            engine.step()
        return engine.result()

    def test_cancel_live_leaves_survivors_byte_identical(
        self, target, trained_drafter, strategy
    ):
        """The acceptance criterion: cancelling request i mid-decode
        must not perturb any surviving request's committed tokens."""
        baseline = _engine(target, trained_drafter, strategy)
        baseline.start(_requests(max_new_tokens=40))
        reference = {
            s.request.request_id: s.response
            for s in self._drain(baseline).slots
        }

        probe = _engine(target, trained_drafter, strategy)
        probe.start(_requests(max_new_tokens=40))
        probe.step()
        probe.step()
        victims = [
            s.request.request_id for s in probe.scheduler.live
        ][:3]
        assert victims, "need live requests to cancel"

        for victim in victims:
            engine = _engine(target, trained_drafter, strategy)
            engine.start(_requests(max_new_tokens=40))
            engine.step()
            engine.step()
            slot = engine.cancel(victim)
            assert slot is not None and slot.cancelled
            result = self._drain(engine)
            for finished in result.slots:
                rid = finished.request.request_id
                if rid == victim:
                    assert finished.cancelled
                    # Partial response is a prefix of the full one.
                    assert (
                        reference[rid][: len(finished.response)]
                        == finished.response
                    )
                else:
                    assert not finished.cancelled
                    assert finished.response == reference[rid], (
                        f"survivor {rid} perturbed by cancelling "
                        f"{victim}"
                    )

    def test_cancel_waiting_request(self, target, trained_drafter,
                                    strategy):
        engine = _engine(target, trained_drafter, strategy, 2)
        engine.start(_requests())
        engine.step()
        assert engine.num_waiting > 0
        waiting_id = engine.scheduler.waiting[0].request_id
        slot = engine.cancel(waiting_id)
        assert slot is not None and slot.cancelled
        assert slot.response == []
        result = self._drain(engine)
        cancelled = [s for s in result.slots if s.cancelled]
        assert [s.request.request_id for s in cancelled] == [waiting_id]

    def test_cancel_unknown_or_finished_returns_none(
        self, target, trained_drafter, strategy
    ):
        engine = _engine(target, trained_drafter, strategy)
        engine.start(_requests(max_new_tokens=4))
        assert engine.cancel(99) is None
        self._drain(engine)
        assert engine.cancel(0) is None

    def test_cancel_everything_drains(self, target, trained_drafter,
                                      strategy):
        engine = _engine(target, trained_drafter, strategy, 2)
        engine.start(_requests())
        engine.step()
        for request_id in range(len(PROMPTS)):
            engine.cancel(request_id)
        assert not engine.has_work
        result = engine.result()
        assert all(s.cancelled for s in result.slots)
        assert len(result.slots) == len(PROMPTS)


class TestQueueMetrics:
    def test_cycle_reports_expose_queue_depth_and_waits(
        self, target, trained_drafter, strategy
    ):
        out = speculative_generate(
            target, trained_drafter, PROMPTS, max_new_tokens=24,
            temperature=0.9, rng=np.random.default_rng(11),
            strategy=strategy, max_batch_size=2,
        )
        first = out.cycle_reports[0]
        # 8 requests, capacity 2: six wait after the first admission.
        assert first.queue_depth == len(PROMPTS) - 2
        assert first.mean_wait_cycles == 0.0
        # Queue drains monotonically under FIFO (no new arrivals).
        depths = [r.queue_depth for r in out.cycle_reports]
        assert depths == sorted(depths, reverse=True)
        assert depths[-1] == 0
        # Later admissions waited: some report positive waiting time.
        assert any(r.mean_wait_cycles > 0 for r in out.cycle_reports[1:])

    def test_metrics_surface_queue_and_waits(self, target,
                                             trained_drafter, strategy):
        out = speculative_generate(
            target, trained_drafter, PROMPTS, max_new_tokens=24,
            temperature=0.9, rng=np.random.default_rng(11),
            strategy=strategy, max_batch_size=2,
        )
        metrics = out.metrics
        assert metrics.max_queue_depth == len(PROMPTS) - 2
        assert metrics.mean_queue_depth > 0
        assert metrics.mean_wait_cycles > 0
        assert len(metrics.wait_cycles) == len(PROMPTS)
        summary = metrics.summary()
        assert summary["mean_queue_depth"] == metrics.mean_queue_depth
        assert summary["mean_wait_cycles"] == metrics.mean_wait_cycles

    def test_unbounded_capacity_never_queues(self, target,
                                             trained_drafter, strategy):
        out = speculative_generate(
            target, trained_drafter, PROMPTS, max_new_tokens=12,
            temperature=0.9, rng=np.random.default_rng(11),
            strategy=strategy, max_batch_size=None,
        )
        assert out.metrics.max_queue_depth == 0
        assert out.metrics.mean_wait_cycles == 0.0

    def test_steal_preserves_accumulated_wait(self):
        from repro.specdec import ContinuousBatchScheduler

        requests = _requests(prompts=PROMPTS[:2])
        donor = ContinuousBatchScheduler(requests, max_batch_size=1)
        donor.admit()
        donor.tick()
        donor.tick()
        stolen = donor.steal_waiting(1)
        assert len(stolen) == 1
        request, waited = stolen[0]
        assert waited == 2  # queued on the donor for two cycles

        receiver = ContinuousBatchScheduler([], max_batch_size=1)
        receiver.tick()
        receiver.push(request, waited=waited)
        receiver.tick()
        slot = receiver.admit()[0]
        # Donor wait (2) + receiver wait (1) accumulate.
        assert slot.wait_cycles == 3

    def test_merged_concatenates_queue_trails(self, target,
                                              trained_drafter, strategy):
        out = speculative_generate(
            target, trained_drafter, PROMPTS[:4], max_new_tokens=12,
            temperature=0.9, rng=np.random.default_rng(3),
            strategy=strategy, max_batch_size=2,
        )
        merged = out.metrics.merged(out.metrics)
        assert len(merged.queue_depths) == 2 * len(
            out.metrics.queue_depths
        )
        assert len(merged.wait_cycles) == 2 * len(
            out.metrics.wait_cycles
        )


class _FallbackBeginDrafter(Drafter):
    """Wrapper that forces the per-sequence begin fallback path."""

    name = "fallback"

    def __init__(self, inner: Drafter) -> None:
        self.inner = inner

    def begin(self, prefix_tokens, last_hidden):
        return self.inner.begin(prefix_tokens, last_hidden)

    # begin_batch deliberately NOT overridden: the base class loops
    # over per-sequence begin calls.

    def propose(self, state, temperature):
        return self.inner.propose(state, temperature)

    def extend(self, state, token):
        return self.inner.extend(state, token)


class TestBatchedBeginFastPath:
    def test_linear_tokens_identical_to_fallback(
        self, target, trained_drafter, strategy
    ):
        """The batched begin fast path (one fuse+cell matmul across the
        live batch) commits exactly the tokens of the per-sequence
        fallback."""
        def run(drafter):
            return speculative_generate(
                target, drafter, PROMPTS, max_new_tokens=24,
                temperature=0.9, rng=np.random.default_rng(5),
                strategy=strategy, use_tree=False,
            )

        fast = run(trained_drafter)
        fallback = run(_FallbackBeginDrafter(trained_drafter))
        assert fast.responses == fallback.responses
        assert fast.finished == fallback.finished
        assert fast.target_steps == fallback.target_steps

    def test_eagle_begin_batch_matches_begin(self, target,
                                             trained_drafter):
        """Vectorised begin_batch is row-identical to begin, with the
        None / 1-D / stacked hidden conventions all honoured."""
        rng = np.random.default_rng(9)
        prefixes = [[1, 5, 6], [2, 7], [3, 8, 9, 4]]
        stacked = rng.normal(
            size=(target.num_layers, target.config.hidden_size)
        )
        bare = rng.normal(size=target.config.hidden_size)
        hiddens = [None, stacked, bare]
        batched = trained_drafter.begin_batch(prefixes, hiddens)
        for prefix, hidden, state in zip(prefixes, hiddens, batched):
            single = trained_drafter.begin(prefix, hidden)
            # Rows agree to the last few ulps (BLAS may block an N-row
            # GEMM differently from a 1-row one); token-identity is
            # asserted end-to-end above.
            np.testing.assert_allclose(
                single.hidden, state.hidden, rtol=1e-12, atol=0.0
            )

    def test_begin_batch_validates_lengths(self, trained_drafter):
        from repro.errors import DrafterError
        with pytest.raises(DrafterError):
            trained_drafter.begin_batch([[1, 2]], [None, None])
