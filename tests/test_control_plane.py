"""Tests for the unified request-lifecycle control plane.

Covers the acceptance criteria of the control-plane redesign:

* the explicit per-request state machine in the scheduler
  (WAITING -> LIVE <-> PARKED -> FINISHED | CANCELLED | EXPIRED), with
  illegal transitions rejected loudly;
* park/resume determinism — a sequence parked mid-decode and later
  resumed produces a token stream byte-identical to the same seed run
  without preemption (the slot stashes tokens, hidden hand-off, and
  random stream whole);
* zero-downtime drafter hot-swap — a mid-rollout ``swap_drafter``
  completes with zero dropped or stalled requests, and the lifecycle
  event stream records the swap cycle;
* the ``EngineControl`` protocol and its event stream;
* the serving layer rebased on it: SLO-aware preemption, the rolling
  pool-wide swap, EXPIRED accounting, and the spot-trainer publication
  path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    EagleDrafter,
    EagleDrafterConfig,
)
from repro.errors import SpecDecodeError
from repro.serving import (
    BATCH,
    INTERACTIVE,
    LeastLoadedDispatch,
    RequestState,
    ServingEngine,
    ServingRequest,
    SloPreemption,
)
from repro.specdec import (
    BatchedSpecDecodeEngine,
    ContinuousBatchScheduler,
    EngineControl,
    RequestEventKind,
    RequestLifecycle,
    SdStrategy,
    make_serving_request,
)
from repro.spot import OnlineDataBuffer, SpotTrainer
from repro.systems import TltSystem
from repro.cluster import ClusterSpec
from repro.hardware import get_gpu, get_model

PROMPTS = [[5, 6, 7], [9, 10, 11], [4, 8, 12], [13, 14, 15],
           [6, 9, 13], [7, 11, 5]]
STRATEGY = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _requests(seed=42, max_new_tokens=30, prompts=PROMPTS):
    rng = np.random.default_rng(seed)
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=len(prompts))
    return [
        make_serving_request(
            request_id=i, prompt=prompt, max_new_tokens=max_new_tokens,
            seed=int(seeds[i]),
        )
        for i, prompt in enumerate(prompts)
    ]


def _engine(target, drafter, max_batch_size=None):
    return BatchedSpecDecodeEngine(
        target, drafter, STRATEGY, temperature=0.9,
        max_batch_size=max_batch_size,
    )


def _drain(engine):
    while engine.has_work:
        engine.step()
    return engine.result()


def _baseline(target, drafter, **kwargs):
    engine = _engine(target, drafter)
    engine.start(_requests(**kwargs))
    return {
        s.request.request_id: list(s.response)
        for s in _drain(engine).slots
    }


class TestStateMachine:
    def test_lifecycle_walk(self, target, trained_drafter):
        engine = _engine(target, trained_drafter, max_batch_size=3)
        engine.start(_requests())
        scheduler = engine.scheduler
        assert scheduler.state(0) is RequestLifecycle.WAITING
        engine.step()
        assert scheduler.state(0) is RequestLifecycle.LIVE
        assert scheduler.state(5) is RequestLifecycle.WAITING
        engine.park(0)
        assert scheduler.state(0) is RequestLifecycle.PARKED
        assert scheduler.num_parked == 1
        engine.resume(0)
        assert scheduler.num_resuming == 1
        outcome = engine.step()
        # Re-admitted this cycle (it may also retire within it).
        assert 0 in [s.request.request_id for s in outcome.resumed]
        assert scheduler.state(0) in (
            RequestLifecycle.LIVE, RequestLifecycle.FINISHED
        )
        _drain(engine)
        assert scheduler.state(0) is RequestLifecycle.FINISHED

    def test_illegal_transitions_raise(self, target, trained_drafter):
        engine = _engine(target, trained_drafter, max_batch_size=2)
        engine.start(_requests())
        engine.step()
        waiting_id = engine.scheduler.waiting[0].request_id
        with pytest.raises(SpecDecodeError):
            engine.park(waiting_id)  # park of a WAITING request
        live_id = engine.scheduler.live[0].request.request_id
        with pytest.raises(SpecDecodeError):
            engine.resume(live_id)  # resume of a LIVE request
        engine.park(live_id)
        engine.resume(live_id)
        with pytest.raises(SpecDecodeError):
            engine.resume(live_id)  # double resume
        with pytest.raises(SpecDecodeError):
            engine.scheduler.state(999)  # unknown id

    def test_expire_is_terminal_and_distinct(self, target,
                                              trained_drafter):
        engine = _engine(target, trained_drafter, max_batch_size=2)
        engine.start(_requests())
        engine.step()
        live_id = engine.scheduler.live[0].request.request_id
        slot = engine.expire(live_id)
        assert slot is not None and slot.expired and not slot.cancelled
        assert engine.scheduler.state(live_id) is RequestLifecycle.EXPIRED
        assert engine.scheduler.num_expired == 1
        assert engine.scheduler.num_cancelled == 0
        assert engine.expire(live_id) is None  # already terminal
        kinds = [e.kind for e in engine.events.events]
        assert RequestEventKind.EXPIRED in kinds

    def test_results_raise_while_parked(self, target, trained_drafter):
        engine = _engine(target, trained_drafter)
        engine.start(_requests())
        engine.step()
        engine.park(0)
        while engine.has_work:
            engine.step()
        with pytest.raises(SpecDecodeError, match="parked"):
            engine.result()
        engine.cancel(0)
        result = engine.result()
        assert result.slots[0].cancelled

    def test_cancel_parked_keeps_partial_response(self, target,
                                                  trained_drafter):
        engine = _engine(target, trained_drafter)
        engine.start(_requests())
        engine.step()
        engine.step()
        parked = engine.park(1)
        committed = list(parked.response)
        assert committed  # decoded at least one cycle before parking
        slot = engine.cancel(1)
        assert slot is not None and slot.cancelled
        assert slot.response == committed

    def test_cancel_while_resume_queued_accounts_park_time(
        self, target, trained_drafter
    ):
        """Terminating a resume-queued slot must close out its park
        interval (no leaked park stamps, parked_cycles counted)."""
        engine = _engine(target, trained_drafter)
        engine.start(_requests())
        engine.step()
        engine.park(1)
        engine.step()
        engine.resume(1)  # now in the resume queue, not yet live
        slot = engine.cancel(1)
        assert slot is not None and slot.cancelled
        assert slot.parked_cycles > 0
        assert not engine.scheduler._parked_at  # no leaked stamp


class TestParkResumeDeterminism:
    def test_parked_and_resumed_stream_byte_identical(
        self, target, trained_drafter
    ):
        """THE acceptance criterion: park mid-decode + later resume
        commits exactly the tokens of an uninterrupted same-seed run —
        for the parked request AND every survivor."""
        reference = _baseline(target, trained_drafter, max_new_tokens=40)

        for victim in (0, 2, 5):
            engine = _engine(target, trained_drafter)
            engine.start(_requests(max_new_tokens=40))
            engine.step()
            engine.step()
            if engine.scheduler.state(victim) is not RequestLifecycle.LIVE:
                continue
            engine.park(victim)
            engine.step()
            engine.step()
            engine.resume(victim)
            result = _drain(engine)
            for slot in result.slots:
                assert not slot.cancelled
                assert slot.response == reference[
                    slot.request.request_id
                ], f"request {slot.request.request_id} perturbed by "\
                   f"park/resume of {victim}"

    def test_park_resume_with_bounded_capacity(self, target,
                                               trained_drafter):
        """Resumed slots respect capacity and re-enter ahead of the
        waiting FIFO; tokens stay byte-identical throughout."""
        reference = _baseline(target, trained_drafter)
        engine = _engine(target, trained_drafter, max_batch_size=2)
        engine.start(_requests())
        engine.step()
        victim = engine.scheduler.live[0].request.request_id
        engine.park(victim)
        engine.step()
        engine.resume(victim)
        assert engine.scheduler.num_live <= 2
        result = _drain(engine)
        assert all(
            s.response == reference[s.request.request_id]
            for s in result.slots
        )
        parked_slot = next(
            s for s in result.slots
            if s.request.request_id == victim
        )
        assert parked_slot.parked_cycles > 0

    def test_resume_priority_over_waiting_fifo(self, target,
                                               trained_drafter):
        engine = _engine(target, trained_drafter, max_batch_size=2)
        engine.start(_requests(max_new_tokens=40))
        engine.step()
        victim = engine.scheduler.live[0].request.request_id
        engine.park(victim)
        engine.resume(victim)
        outcome = engine.step()
        # The freed slot went to the resumed request, not the FIFO head.
        assert [s.request.request_id for s in outcome.resumed] == [victim]
        assert engine.scheduler.state(victim) in (
            RequestLifecycle.LIVE, RequestLifecycle.FINISHED
        )


class TestDrafterHotSwap:
    def test_mid_rollout_swap_zero_dropped_or_stalled(
        self, target, trained_drafter, untrained_drafter
    ):
        """A mid-rollout swap to a DIFFERENT drafter: every live request
        still retires (no drops, no stalls) and the event trail records
        the swap cycle."""
        engine = _engine(target, trained_drafter, max_batch_size=3)
        engine.start(_requests())
        engine.step()
        engine.step()
        live_before = {
            s.request.request_id for s in engine.scheduler.live
        }
        cycle_before = engine.scheduler.cycle
        engine.swap_drafter(untrained_drafter)
        assert engine.drafter is untrained_drafter
        assert engine.drafter_swaps == 1
        result = _drain(engine)
        assert len(result.slots) == len(PROMPTS)
        assert all(not s.cancelled for s in result.slots)
        assert live_before <= {
            s.request.request_id for s in result.slots
        }
        swaps = engine.events.of_kind(RequestEventKind.SWAPPED)
        assert len(swaps) == 1
        assert swaps[0].cycle == cycle_before
        assert swaps[0].request_id is None

    def test_swap_to_equal_weights_is_byte_identical(
        self, target, trained_drafter
    ):
        """Swapping in a clone (same weights) mid-rollout must not move
        a single committed token — drafting state really is rebuilt
        from the hidden hand-off each cycle."""
        reference = _baseline(target, trained_drafter)
        engine = _engine(target, trained_drafter)
        engine.start(_requests())
        engine.step()
        engine.swap_drafter(trained_drafter.clone())
        result = _drain(engine)
        assert {
            s.request.request_id: list(s.response)
            for s in result.slots
        } == reference

    def test_swap_validation(self, target, trained_drafter):
        engine = _engine(target, trained_drafter)
        with pytest.raises(SpecDecodeError):
            engine.swap_drafter("not a drafter")  # type: ignore[arg-type]

        class _Pinned(EagleDrafter):
            @property
            def supports_hot_swap(self):
                return False

        pinned = _Pinned(
            target, EagleDrafterConfig(), np.random.default_rng(3)
        )
        with pytest.raises(SpecDecodeError, match="hot swap"):
            engine.swap_drafter(pinned)


class TestEngineControlSurface:
    def test_engine_satisfies_protocol(self, target, trained_drafter):
        engine = _engine(target, trained_drafter)
        assert isinstance(engine, EngineControl)

    def test_event_stream_subscribable_and_stamped(
        self, target, trained_drafter
    ):
        engine = _engine(target, trained_drafter, max_batch_size=2)
        engine.time_fn = lambda: 123.0
        seen = []
        engine.events.subscribe(seen.append)
        engine.start(_requests(max_new_tokens=6))
        engine.step()
        engine.cancel(engine.scheduler.live[0].request.request_id)
        _drain(engine)
        assert seen == engine.events.events
        kinds = [e.kind for e in seen]
        assert kinds.count(RequestEventKind.ADMITTED) == len(PROMPTS)
        assert RequestEventKind.CANCELLED in kinds
        assert RequestEventKind.FINISHED in kinds
        assert all(e.time == 123.0 for e in seen)
        admitted = engine.events.of_kind(RequestEventKind.ADMITTED)
        assert admitted[0].cycle == 0

    def test_events_reset_on_start(self, target, trained_drafter):
        engine = _engine(target, trained_drafter)
        engine.start(_requests(max_new_tokens=4))
        _drain(engine)
        assert len(engine.events) > 0
        engine.start(())
        assert len(engine.events) == 0


class TestStealWaitingEdgeCases:
    """Satellite: steal_waiting edge cases."""

    def test_steal_from_empty_queue(self):
        scheduler = ContinuousBatchScheduler([], max_batch_size=1)
        assert scheduler.steal_waiting(3) == []
        assert scheduler.steal_waiting(0) == []
        with pytest.raises(SpecDecodeError):
            scheduler.steal_waiting(-1)

    def test_steal_respects_available_count(self):
        requests = _requests(prompts=PROMPTS[:4])
        donor = ContinuousBatchScheduler(requests, max_batch_size=1)
        donor.admit()  # one live, three waiting
        stolen = donor.steal_waiting(10)
        assert len(stolen) == 3  # only what was actually queued
        assert donor.num_waiting == 0
        assert donor.num_live == 1
        # FIFO order of the stolen block is preserved.
        assert [r.request_id for r, _ in stolen] == [1, 2, 3]

    def test_stolen_request_cancelled_on_receiver(self):
        requests = _requests(prompts=PROMPTS[:3])
        donor = ContinuousBatchScheduler(requests, max_batch_size=1)
        donor.admit()
        (request, waited), = donor.steal_waiting(1)
        receiver = ContinuousBatchScheduler([], max_batch_size=1)
        receiver.push(request, waited=waited)
        # The donor fully disowned it: results() must not expect it...
        assert request.request_id not in donor._order
        # ...and cancelling on the receiver retires it there.
        slot = receiver.cancel(request.request_id)
        assert slot is not None and slot.cancelled
        assert receiver.state(
            request.request_id
        ) is RequestLifecycle.CANCELLED
        assert not receiver.has_work
        assert [
            s.request.request_id for s in receiver.results()
        ] == [request.request_id]


class _ControlTrace:
    """Mixed BATCH/INTERACTIVE arrivals that force queueing."""

    @staticmethod
    def build():
        rng = np.random.default_rng(7)
        requests = [
            ServingRequest(
                i, list(rng.integers(3, 24, 4)), 60, 0.0,
                slo=BATCH, seed=100 + i,
            )
            for i in range(2)
        ]
        requests += [
            ServingRequest(
                2 + i, list(rng.integers(3, 24, 4)), 6, 3.0 + 2 * i,
                slo=INTERACTIVE, seed=200 + i,
            )
            for i in range(4)
        ]
        return requests


class TestServingPreemption:
    def _run(self, target, drafter, preemption):
        frontend = ServingEngine(
            target, drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2, preemption=preemption,
        )
        return frontend, frontend.run(_ControlTrace.build())

    def test_preemption_cuts_interactive_latency_losslessly(
        self, target, trained_drafter
    ):
        _, base = self._run(target, trained_drafter, None)
        frontend, pre = self._run(
            target, trained_drafter, SloPreemption()
        )
        assert pre.preemptions > 0
        # Preemption never touches a committed token.
        assert [r.response for r in pre.records] == [
            r.response for r in base.records
        ]
        assert all(r.finished for r in pre.records)
        inter = lambda rep: [  # noqa: E731
            r.latency for r in rep.records
            if r.request.slo.name == "interactive"
        ]
        assert max(inter(pre)) < max(inter(base))
        assert pre.slo_attainment >= base.slo_attainment
        kinds = [e.kind for e in frontend.lifecycle_events()]
        assert RequestEventKind.PREEMPTED in kinds
        assert RequestEventKind.RESUMED in kinds
        assert pre.summary()["preempted"] == float(pre.preemptions)

    def test_parked_record_states_roundtrip(self, target,
                                            trained_drafter):
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
            preemption=SloPreemption(),
        )
        for request in _ControlTrace.build():
            frontend.submit(request)
        saw_parked = False
        for _ in range(200):
            if not frontend._unresolved():
                break
            frontend.tick()
            saw_parked = saw_parked or any(
                r.state is RequestState.PARKED
                for r in frontend.records.values()
            )
        assert saw_parked
        report = frontend.report()
        assert all(r.finished for r in report.records)

    def test_explicit_park_resume_api(self, target, trained_drafter):
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        trace = _ControlTrace.build()
        for request in trace:
            frontend.submit(request)
        frontend.tick()
        assert frontend.park(0)
        assert frontend.records[0].state is RequestState.PARKED
        assert not frontend.park(0)  # not running any more
        assert frontend.resume(0)
        # Already resume-queued: still True (the request IS coming
        # back), distinguishing it from unknown/terminal ids.
        assert frontend.resume(0)
        assert not frontend.resume(99)
        report = frontend.run()
        assert all(r.finished for r in report.records)

    def test_urgent_lane_makes_preemption_seat_the_arrival(
        self, target, trained_drafter
    ):
        """An urgent arrival that meets a BATCH backlog enters the
        urgent admission lane (queued ahead of the backlog), so the
        park's freed slot seats the arrival itself — co-location's
        head-of-line-blocking fix.  Parked rollouts resume and finish."""
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=1,
            preemption=SloPreemption(),
        )
        rng = np.random.default_rng(3)
        batch = [
            ServingRequest(
                i, list(rng.integers(3, 24, 4)), 60, 0.0,
                slo=BATCH, seed=i,
            )
            for i in range(3)  # one live + two queued ahead
        ]
        urgent = ServingRequest(
            3, list(rng.integers(3, 24, 4)), 5, 2.0,
            slo=INTERACTIVE, seed=9,
        )
        report = ServingEngine.run(frontend, batch + [urgent])
        assert report.preemptions == 1  # park fired FOR the arrival
        urgent_record = report.records[3]
        # Jumped the 2-deep BATCH backlog: admitted right after arrival
        # into the parked victim's slot, not after ~60-token stragglers.
        assert urgent_record.queue_wait is not None
        assert urgent_record.queue_wait <= 2.0
        assert all(r.finished for r in report.records)

    def test_preemption_declines_when_free_slot_seats_arrival(
        self, target, trained_drafter
    ):
        """No park is ever wasted: an urgent arrival that a free slot
        will seat next cycle anyway never triggers a preemption."""
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
            preemption=SloPreemption(),
        )
        rng = np.random.default_rng(3)
        live = ServingRequest(
            0, list(rng.integers(3, 24, 4)), 60, 0.0,
            slo=BATCH, seed=0,
        )
        urgent = ServingRequest(
            1, list(rng.integers(3, 24, 4)), 5, 2.0,
            slo=INTERACTIVE, seed=9,
        )
        report = ServingEngine.run(frontend, [live, urgent])
        assert report.preemptions == 0  # the second slot was free
        assert all(r.finished for r in report.records)

    def test_resuming_slots_visible_to_load_signals(
        self, target, trained_drafter
    ):
        """A resume-queued slot occupies neither live nor parked nor
        waiting, but it takes a slot ahead of the FIFO next cycle —
        free_slots and backlog_tokens must count it, or dispatch and
        work stealing route onto a worker heavier than it looks."""
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        rng = np.random.default_rng(3)
        for i in range(2):
            frontend.submit(ServingRequest(
                i, list(rng.integers(3, 24, 4)), 60, 0.0,
                slo=BATCH, seed=i,
            ))
        frontend.tick()  # both live, worker saturated
        worker = frontend.workers[0]
        assert frontend.park(0)
        backlog_parked = worker.backlog_tokens
        assert worker.free_slots == 1
        assert frontend.resume(0)  # resume-queued, not yet live
        assert worker.num_resuming == 1
        # The pending resume consumes the free slot and its remaining
        # tokens stay on the backlog.
        assert worker.free_slots == 0
        assert worker.backlog_tokens == backlog_parked
        report = frontend.run()
        assert all(r.finished for r in report.records)

    def test_serving_swap_validates_at_call_site(self, target,
                                                 trained_drafter):
        from repro.errors import ServingError

        frontend = ServingEngine(
            target, trained_drafter, num_workers=2, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        with pytest.raises(ServingError):
            frontend.swap_drafter("weights")  # type: ignore[arg-type]
        assert not frontend.swap_in_progress  # no partial roll queued

    def test_choose_victim_policy(self):
        policy = SloPreemption()
        interactive = ServingRequest(
            10, [1], 4, 0.0, slo=INTERACTIVE, seed=1
        )
        batch_a = ServingRequest(0, [1], 60, 0.0, slo=BATCH, seed=2)
        batch_b = ServingRequest(1, [1], 80, 0.0, slo=BATCH, seed=3)
        live = [(batch_a, 30), (batch_b, 70)]
        # Longest-backlog BATCH victim wins.
        assert policy.choose_victim(interactive, live) == 1
        # A BATCH arrival never preempts.
        assert policy.choose_victim(batch_a, live) is None
        # No eligible victims -> decline.
        inter_live = [(interactive, 3)]
        assert policy.choose_victim(interactive, inter_live) is None
        # Urgency ordering when victim_classes is None.
        anyclass = SloPreemption(victim_classes=None)
        assert anyclass.choose_victim(interactive, inter_live) is None
        assert anyclass.choose_victim(interactive, live) == 1


class TestServingRollingSwap:
    def test_rolling_swap_zero_downtime(self, target, trained_drafter):
        base = ServingEngine(
            target, trained_drafter, num_workers=2, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        ).run(_ControlTrace.build())

        frontend = ServingEngine(
            target, trained_drafter, num_workers=2, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        for request in _ControlTrace.build():
            frontend.submit(request)
        for _ in range(3):
            frontend.tick()
        frontend.swap_drafter(trained_drafter.clone())
        assert frontend.swap_in_progress
        report = frontend.run()
        assert not frontend.swap_in_progress
        assert frontend.drafter_swaps == 1
        # Zero dropped or stalled requests across the swap.
        assert all(r.finished for r in report.records)
        # Equal weights -> byte-identical to the unswapped run.
        assert [r.response for r in report.records] == [
            r.response for r in base.records
        ]
        swaps = [
            e for e in frontend.lifecycle_events()
            if e.kind is RequestEventKind.SWAPPED
        ]
        assert [e.worker_id for e in swaps] == [0, 1]
        # One worker per tick: swap times strictly increase.
        assert swaps[0].time < swaps[1].time

    def test_swap_completes_even_when_pool_idle(self, target,
                                                trained_drafter):
        frontend = ServingEngine(
            target, trained_drafter, num_workers=3, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        frontend.swap_drafter(trained_drafter.clone())
        frontend.run(())  # no requests: the run still finishes the roll
        assert not frontend.swap_in_progress
        assert frontend.drafter_swaps == 1

    def test_publish_drafter_rolls_spot_snapshot(
        self, target, trained_drafter, rollout_sequences
    ):
        from repro.drafter.training import collect_training_sequences

        system = TltSystem(
            get_model("Qwen2.5-7B"),
            ClusterSpec(
                num_workers=2, gpus_per_worker=4, gpu=get_gpu("H100")
            ),
        )
        frontend = system.serving_frontend(
            target, trained_drafter, num_workers=2, max_batch_size=4,
            temperature=0.9,
        )
        trainer = DrafterTrainer(
            trained_drafter.clone(),
            DrafterTrainingConfig(learning_rate=5e-3),
        )
        spot = SpotTrainer(
            trainer=trainer,
            buffer=OnlineDataBuffer(capacity_tokens=100_000),
            checkpoints=None,
            batch_sequences=4,
            max_positions=128,
        )
        spot.begin_step(0)
        spot.ingest(
            collect_training_sequences(target, rollout_sequences[:8])
        )
        spot.train_slice(2, np.random.default_rng(0))

        published = system.publish_drafter(frontend, spot)
        assert published is not spot.trainer.drafter  # a snapshot
        assert frontend.swap_in_progress
        frontend.run(())
        assert frontend.drafter_swaps == 1
        for worker in frontend.workers:
            assert worker.engine.drafter is published


class TestServingCancelPending:
    """Satellite: cancelling a request still in the arrival trace."""

    def test_cancel_pending_removes_from_arrival_queue(
        self, target, trained_drafter
    ):
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        late = ServingRequest(0, [5, 6], 8, arrival_time=50.0, seed=1)
        now = ServingRequest(1, [7, 8], 4, arrival_time=0.0, seed=2)
        frontend.submit(late)
        frontend.submit(now)
        assert frontend.cancel(0)
        # Eagerly removed from the pending-arrival queue, not lazily
        # skipped at t=50: the run drains as soon as request 1 is done.
        assert all(rid != 0 for _, rid in frontend._arrivals)
        report = frontend.run()
        assert report.ticks < 50
        assert report.records[0].cancelled
        assert report.records[0].response == []
        assert report.records[1].finished
        # A never-submitted id still reports False.
        assert not frontend.cancel(99)
        # The pre-dispatch cancellation still lands on the pool trail:
        # every submitted request ends in exactly one terminal event.
        cancelled = [
            e for e in frontend.lifecycle_events()
            if e.kind is RequestEventKind.CANCELLED
        ]
        assert [e.request_id for e in cancelled] == [0]


class TestDeadlineExpiry:
    def test_deadline_lands_on_expired_state(self, target,
                                             trained_drafter):
        from repro.serving import SloClass

        tight = SloClass(
            "tight", ttft_target=1.0, latency_target=2.0, deadline=3.0
        )
        requests = [
            ServingRequest(0, [5, 6, 7], 60, 0.0, slo=tight, seed=11),
            ServingRequest(1, [9, 10, 11], 4, 0.0, seed=12),
        ]
        frontend = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=STRATEGY,
            temperature=0.9, max_batch_size=2,
        )
        report = frontend.run(requests)
        record = report.records[0]
        assert record.expired and record.cancelled
        assert record.state is RequestState.EXPIRED
        assert report.summary()["expired"] == 1.0
        assert len(report.expired_records) == 1
        kinds = [e.kind for e in frontend.lifecycle_events()]
        assert RequestEventKind.EXPIRED in kinds
        assert RequestEventKind.CANCELLED not in kinds


class TestRolloutBackendSwap:
    def test_adaptive_backend_adopts_published_drafter(
        self, target, trained_drafter, untrained_drafter
    ):
        from repro.rl import AdaptiveSpeculativeRollout

        backend = AdaptiveSpeculativeRollout(untrained_drafter)
        backend.swap_drafter(trained_drafter)
        assert backend.drafter is trained_drafter
        out = backend.generate(
            target, PROMPTS[:2], 8, 0.9, np.random.default_rng(0)
        )
        assert len(out.responses) == 2
