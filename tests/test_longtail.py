"""Tests for the long-tail rollout subsystem (``repro.longtail``).

Three contracts under test:

* the :class:`~repro.longtail.predictor.LengthPredictor` is a true
  online estimator — family learning, prior/cap fallback, and
  calibration scored strictly before each update (no peeking);
* the :class:`~repro.longtail.scheduler.RolloutScheduler` only ever
  reorders *work*: FIFO mode reproduces
  :class:`~repro.rl.serving_backend.ServingRolloutBackend`
  byte-for-byte, tail-first pipelined mode reproduces FIFO
  byte-for-byte, and the trainer seam
  (:meth:`~repro.rl.trainer.RlTrainer.step` with an injected rollout)
  reproduces the in-line step exactly at ``lookahead=0``;
* the zoo plumbing — per-worker drafter swaps, per-segment acceptance
  counters, segment-affinity dispatch, and the
  :class:`~repro.longtail.zoo.DrafterZoo` bandit on top — moves
  acceptance rates without touching committed tokens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SchedulingError, ServingError
from repro.llm.vocab import BOS_ID, Vocabulary
from repro.longtail import (
    DrafterZoo,
    LengthPredictor,
    RolloutScheduler,
    SchedulerMode,
    run_pipelined_steps,
)
from repro.rl import (
    RlConfig,
    RlTrainer,
    ServingRolloutBackend,
)
from repro.serving import (
    SegmentAffinityDispatch,
    ServingEngine,
)
from repro.serving.metrics import ServingReport
from repro.serving.request import SloClass
from repro.workload import (
    LognormalLengths,
    SuccessorChainTask,
    segmented_grpo_trace,
)


def _frontend(scenario, num_workers=2, max_batch_size=2, **kwargs):
    return ServingEngine(
        scenario.target, scenario.drafter, num_workers=num_workers,
        strategy=scenario.strategy, temperature=scenario.temperature,
        max_batch_size=max_batch_size, **kwargs,
    )


# -- the predictor ---------------------------------------------------------


class TestLengthPredictor:
    def test_validation(self):
        for kwargs in (
            dict(family_prefix=0),
            dict(quantile=0.0),
            dict(quantile=101.0),
            dict(ewma_alpha=0.0),
            dict(min_window=0),
            dict(window=2, min_window=4),
            dict(prior_samples=0),
            dict(hit_factor=0.5),
        ):
            with pytest.raises(ConfigError):
                LengthPredictor(**kwargs)

    def test_fallback_chain(self):
        bare = LengthPredictor()
        with pytest.raises(ConfigError):
            bare.predict([5, 6, 7])  # no family, no prior, no cap
        assert bare.predict([5, 6, 7], cap=8) == 8  # cap fallback
        prior = LengthPredictor(
            prior=LognormalLengths(median=10.0, sigma=0.3, cap=64)
        )
        predicted = prior.predict([5, 6, 7], cap=64)
        assert 5 <= predicted <= 25  # near the prior's p75
        assert prior.predict([5, 6, 7], cap=3) == 3  # clipped to cap
        assert prior.calibration.prior_fallbacks == 2
        assert prior.calibration.predictions == 2

    def test_prior_consumes_no_caller_rng(self):
        """Two predictors over the same prior agree exactly — the
        prior quantile is drawn from a private fixed seed."""
        prior = LognormalLengths(median=20.0, sigma=0.8, cap=100)
        a = LengthPredictor(prior=prior)
        b = LengthPredictor(prior=prior)
        assert a.predict([1, 2], cap=100) == b.predict([1, 2], cap=100)

    def test_family_learning(self):
        predictor = LengthPredictor(family_prefix=2, min_window=4)
        long_prompt, short_prompt = [10, 11, 1], [20, 21, 2]
        for _ in range(8):
            predictor.observe(long_prompt, 40)
            predictor.observe(short_prompt, 5)
        assert predictor.num_families == 2
        assert predictor.predict(long_prompt) == 40
        assert predictor.predict(short_prompt) == 5
        # A different suffix, same leading tokens: same family.
        assert predictor.predict([10, 11, 99]) == 40

    def test_single_observation_owns_thin_window(self):
        predictor = LengthPredictor(min_window=4)
        predictor.observe([7, 7, 7, 7], 12)
        # Quantile and EWMA agree on a single sample.
        assert predictor.predict([7, 7, 7, 7]) == 12

    def test_quantile_tracks_the_tail(self):
        predictor = LengthPredictor(quantile=75.0, min_window=4)
        prompt = [3, 3, 3, 3]
        for length in (4, 4, 4, 4, 4, 4, 20, 20):
            predictor.observe(prompt, length)
        # p75 of the window sits above the median bulk.
        assert predictor.predict(prompt) > 4

    def test_calibration_scores_before_update(self):
        predictor = LengthPredictor(
            min_window=1,
            prior=LognormalLengths(median=10.0, sigma=0.3, cap=64),
        )
        prompt = [4, 5, 6, 7]
        # First observation is scored against the PRIOR, not itself.
        predictor.observe(prompt, 100)
        cal = predictor.calibration
        assert cal.observations == 1
        assert cal.underestimates == 1  # prior ~10 vs observed 100
        assert cal.within_factor == 0
        # Second observation is scored against the family estimate
        # (now exactly 100): zero error counts as an overestimate
        # (error >= 0) and lands inside the factor band.
        predictor.observe(prompt, 100)
        assert cal.observations == 2
        assert cal.overestimates == 1
        assert cal.within_factor == 1
        assert cal.hit_rate == pytest.approx(0.5)
        assert cal.mean_abs_error > 0

    def test_unscored_without_prior(self):
        """No family data and no prior: nothing to score against."""
        predictor = LengthPredictor()
        predictor.observe([1, 2, 3, 4], 10)
        assert predictor.calibration.observations == 0
        predictor.observe([1, 2, 3, 4], 10)
        assert predictor.calibration.observations == 1

    def test_observe_validation(self):
        predictor = LengthPredictor()
        with pytest.raises(ConfigError):
            predictor.observe([1, 2], 0)
        with pytest.raises(ConfigError):
            predictor.observe_batch([[1], [2]], [3])

    def test_summary_keys(self):
        summary = LengthPredictor().calibration.summary()
        assert set(summary) == {
            "predictions", "prior_fallbacks", "observations",
            "mean_abs_error", "overestimates", "underestimates",
            "hit_rate",
        }


# -- the scheduler ---------------------------------------------------------


def _grpo_prompts(scenario, groups=2, group_size=2):
    prompts = []
    for g in range(groups):
        prompts.extend(
            [list(scenario.prompts[g % len(scenario.prompts)])]
            * group_size
        )
    return prompts


class TestSchedulerValidation:
    def test_rejects_deadlined_slo(self, scenario_factory):
        frontend = _frontend(scenario_factory(70))
        deadlined = SloClass("rollout", 8.0, 96.0, deadline=10.0)
        with pytest.raises(ConfigError):
            RolloutScheduler(frontend, slo=deadlined)
        with pytest.raises(ConfigError):
            RolloutScheduler(frontend, group_size=0)
        with pytest.raises(ConfigError):
            RolloutScheduler(frontend, max_ticks=0)

    def test_rejects_foreign_policy_and_temperature(
        self, scenario_factory
    ):
        scenario = scenario_factory(71)
        scheduler = RolloutScheduler(_frontend(scenario))
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            scheduler.submit_batch(
                scenario.target.clone(), [[5, 6]], 4,
                scenario.temperature, rng,
            )
        with pytest.raises(ConfigError):
            scheduler.submit_batch(
                scenario.target, [[5, 6]], 4,
                scenario.temperature + 0.1, rng,
            )
        with pytest.raises(ConfigError):
            scheduler.submit_batch(
                scenario.target, [[5, 6]], 0,
                scenario.temperature, rng,
            )

    def test_collect_contracts(self, scenario_factory):
        scenario = scenario_factory(72)
        scheduler = RolloutScheduler(
            _frontend(scenario), mode=SchedulerMode.FIFO
        )
        with pytest.raises(SchedulingError):
            scheduler.collect(0)  # never submitted
        batch_id = scheduler.submit_batch(
            scenario.target, [scenario.prompts[0]] * 2, 4,
            scenario.temperature, np.random.default_rng(1),
        )
        scheduler.collect(batch_id)
        with pytest.raises(SchedulingError):
            scheduler.collect(batch_id)  # already delivered


class TestFifoEquivalence:
    def test_matches_serving_backend_byte_for_byte(
        self, scenario_factory
    ):
        """FIFO mode is the whole-group baseline: same seeds, same
        ids, same responses as ServingRolloutBackend."""
        scenario = scenario_factory(73)
        prompts = _grpo_prompts(scenario, groups=2, group_size=2)

        backend = ServingRolloutBackend(_frontend(scenario))
        reference = backend.generate(
            scenario.target, prompts, 6, scenario.temperature,
            np.random.default_rng(9),
        )

        scheduler = RolloutScheduler(
            _frontend(scenario), mode=SchedulerMode.FIFO
        )
        batch_id = scheduler.submit_batch(
            scenario.target, prompts, 6, scenario.temperature,
            np.random.default_rng(9),
        )
        result = scheduler.collect(batch_id)

        assert result.responses == reference.responses
        assert result.prompts == reference.prompts
        assert result.finished == reference.finished


class TestByteIdentity:
    def _run(self, scenario, batches, mode, pipelined, predictor=None):
        scheduler = RolloutScheduler(
            _frontend(scenario),
            mode=mode,
            predictor=predictor,
        )
        rng = np.random.default_rng(31)
        results = []
        if pipelined:
            ids = [
                scheduler.submit_batch(
                    scenario.target, batch, 8,
                    scenario.temperature, rng,
                )
                for batch in batches
            ]
            results = [scheduler.collect(i) for i in ids]
        else:
            for batch in batches:
                batch_id = scheduler.submit_batch(
                    scenario.target, batch, 8,
                    scenario.temperature, rng,
                )
                results.append(scheduler.collect(batch_id))
        return scheduler, results

    def test_tail_first_pipelined_matches_fifo(self, scenario_factory):
        """The headline contract: staging order, release timing, and
        cross-batch pipelining change NOTHING about any request's
        output — only the makespan."""
        scenario = scenario_factory(74)
        trace = segmented_grpo_trace(
            np.random.default_rng(8),
            scenario.target.config.vocab_size,
            num_batches=3,
            groups_per_batch=3,
            group_size=2,
        )
        _, fifo = self._run(
            scenario, trace.batches, SchedulerMode.FIFO, False
        )
        tail_sched, tail = self._run(
            scenario,
            trace.batches,
            SchedulerMode.TAIL_FIRST,
            True,
            predictor=LengthPredictor(
                prior=LognormalLengths(median=6.0, sigma=0.8, cap=8)
            ),
        )
        for a, b in zip(fifo, tail):
            assert a.responses == b.responses
            assert a.prompts == b.prompts
            assert a.finished == b.finished
        # The pipelined run actually overlapped batches.
        assert tail_sched.stats.pipelined_releases > 0
        assert tail_sched.stats.batches_collected == 3

    def test_fifo_never_pipelines(self, scenario_factory):
        scenario = scenario_factory(75)
        trace = segmented_grpo_trace(
            np.random.default_rng(8),
            scenario.target.config.vocab_size,
            num_batches=2,
            groups_per_batch=2,
            group_size=2,
        )
        scheduler, _ = self._run(
            scenario, trace.batches, SchedulerMode.FIFO, False
        )
        assert scheduler.stats.pipelined_releases == 0


class TestSchedulerDelivery:
    def test_group_complete_in_original_order(self, scenario_factory):
        scenario = scenario_factory(76)
        engine = _frontend(scenario)
        scheduler = RolloutScheduler(engine)
        prompts = _grpo_prompts(scenario, groups=2, group_size=3)
        batch_id = scheduler.submit_batch(
            scenario.target, prompts, 5, scenario.temperature,
            np.random.default_rng(3),
        )
        result = scheduler.collect(batch_id)
        # Original prompt order, BOS included (pool decodes with BOS).
        assert all(p[0] == BOS_ID for p in result.prompts)
        assert [p[1:] for p in result.prompts] == prompts
        # Group tags: 3 + 3 members, two distinct groups.
        groups = [
            engine.records[i].request.group
            for i in sorted(engine.records)
        ]
        assert groups[0] == groups[1] == groups[2]
        assert groups[3] == groups[4] == groups[5]
        assert groups[0] != groups[3]

    def test_predictor_closes_the_loop(self, scenario_factory):
        scenario = scenario_factory(77)
        scheduler = RolloutScheduler(_frontend(scenario))
        prompts = _grpo_prompts(scenario)
        batch_id = scheduler.submit_batch(
            scenario.target, prompts, 5, scenario.temperature,
            np.random.default_rng(4),
        )
        scheduler.collect(batch_id)
        predictor = scheduler.predictor
        assert predictor.num_families >= 1
        # Every member's observed length was absorbed.
        total = sum(
            s.observations for s in predictor.families.values()
        )
        assert total == len(prompts)

    def test_segment_tagging_and_counters(self, scenario_factory):
        scenario = scenario_factory(78)
        vocab = scenario.target.config.vocab_size
        trace = segmented_grpo_trace(
            np.random.default_rng(12), vocab,
            num_batches=1, groups_per_batch=4, group_size=2,
            num_families=2,
        )
        engine = _frontend(scenario)
        scheduler = RolloutScheduler(
            engine, segment_of=trace.segment_of
        )
        batch_id = scheduler.submit_batch(
            scenario.target, trace.batches[0], 6,
            scenario.temperature, np.random.default_rng(5),
        )
        scheduler.collect(batch_id)
        tags = {
            r.request.segment for r in engine.records.values()
        }
        assert tags == set(trace.segments)
        report = engine.report()
        assert set(report.segment_drafted) == set(trace.segments)
        for segment, rate in report.segment_acceptance.items():
            assert 0.0 <= rate <= 1.0
            assert report.segment_accepted[segment] <= (
                report.segment_drafted[segment]
            )


# -- the trainer seam ------------------------------------------------------


def _trainer(scenario, policy, backend=None, seed=123):
    vocab = Vocabulary(scenario.target.config.vocab_size)
    task = SuccessorChainTask(vocab=vocab, target_pairs=4)
    config = RlConfig(
        num_prompts=2,
        group_size=2,
        max_new_tokens=6,
        temperature=scenario.temperature,
        learning_rate=5e-3,
    )
    return RlTrainer(
        policy, task, config,
        backend=backend, rng=np.random.default_rng(seed),
    )


class _PoolScenario:
    """Scenario view whose target is a cloned (trainable) policy."""

    def __init__(self, scenario, policy):
        self.target = policy
        self.drafter = scenario.drafter
        self.strategy = scenario.strategy
        self.temperature = scenario.temperature


class TestTrainerSeam:
    def test_step_rejects_half_injection(self, scenario_factory):
        scenario = scenario_factory(80)
        policy = scenario.target.clone()
        trainer = _trainer(scenario, policy)
        with pytest.raises(ConfigError):
            trainer.step(rollout=None, prompts=trainer.sample_prompts())

    def test_injected_rollout_matches_inline_step(
        self, scenario_factory
    ):
        """lookahead=0 pipelined stepping IS the in-line loop: same
        prompts, same seeds, same updates, same reports."""
        scenario = scenario_factory(81)

        policy_a = scenario.target.clone()
        view_a = _PoolScenario(scenario, policy_a)
        trainer_a = _trainer(
            scenario, policy_a,
            backend=ServingRolloutBackend(_frontend(view_a)),
        )
        inline = [trainer_a.step() for _ in range(2)]

        policy_b = scenario.target.clone()
        view_b = _PoolScenario(scenario, policy_b)
        trainer_b = _trainer(scenario, policy_b)
        scheduler = RolloutScheduler(
            _frontend(view_b), mode=SchedulerMode.FIFO
        )
        piped = run_pipelined_steps(
            trainer_b, scheduler, num_steps=2, lookahead=0
        )

        for a, b in zip(inline, piped):
            assert a.step == b.step
            assert a.mean_reward == b.mean_reward
            assert a.pg_loss == b.pg_loss
            assert a.kl_value == b.kl_value
            assert a.mean_response_length == b.mean_response_length
        probe = np.array([[1, 5, 6, 7]])
        np.testing.assert_array_equal(
            policy_a.forward(probe).logits,
            policy_b.forward(probe).logits,
        )

    def test_lookahead_pipelines_across_steps(self, scenario_factory):
        scenario = scenario_factory(82)
        policy = scenario.target.clone()
        view = _PoolScenario(scenario, policy)
        trainer = _trainer(scenario, policy)
        scheduler = RolloutScheduler(_frontend(view))
        reports = run_pipelined_steps(
            trainer, scheduler, num_steps=3, lookahead=1
        )
        assert [r.step for r in reports] == [0, 1, 2]
        assert scheduler.stats.batches_collected == 3
        # Batch k+1 was staged while batch k was in flight.
        assert scheduler.stats.pipelined_releases > 0

    def test_run_pipelined_validation(self, scenario_factory):
        scenario = scenario_factory(83)
        policy = scenario.target.clone()
        view = _PoolScenario(scenario, policy)
        trainer = _trainer(scenario, policy)
        scheduler = RolloutScheduler(_frontend(view))
        with pytest.raises(ConfigError):
            run_pipelined_steps(trainer, scheduler, num_steps=0)
        with pytest.raises(ConfigError):
            run_pipelined_steps(
                trainer, scheduler, num_steps=1, lookahead=-1
            )


# -- per-worker swaps ------------------------------------------------------


class TestWorkerSwap:
    def test_targeted_swap_applies_next_tick(
        self, scenario_factory, untrained_drafter
    ):
        scenario = scenario_factory(85)
        engine = _frontend(scenario)
        before = engine.workers[0].engine.drafter
        engine.swap_worker_drafter(1, untrained_drafter)
        assert engine.swap_in_progress
        engine.tick()
        assert engine.workers[1].engine.drafter is untrained_drafter
        assert engine.workers[0].engine.drafter is before
        assert engine.worker_swaps == 1
        assert engine.drafter_swaps == 0
        assert not engine.swap_in_progress

    def test_latest_targeted_swap_wins(
        self, scenario_factory, untrained_drafter, trained_drafter
    ):
        scenario = scenario_factory(86)
        engine = _frontend(scenario)
        engine.swap_worker_drafter(0, untrained_drafter)
        engine.swap_worker_drafter(0, trained_drafter)
        engine.tick()
        assert engine.workers[0].engine.drafter is trained_drafter
        assert engine.worker_swaps == 1
        assert not engine.swap_in_progress

    def test_pool_roll_supersedes_targeted(
        self, scenario_factory, untrained_drafter, trained_drafter
    ):
        scenario = scenario_factory(87)
        engine = _frontend(scenario)
        engine.swap_worker_drafter(1, untrained_drafter)
        engine.swap_drafter(trained_drafter)  # pool-wide roll
        engine.tick()
        engine.tick()
        for worker in engine.workers:
            assert worker.engine.drafter is trained_drafter
        assert engine.drafter_swaps == 1
        assert engine.worker_swaps == 0

    def test_swap_validation(
        self, scenario_factory, untrained_drafter
    ):
        scenario = scenario_factory(88)
        engine = _frontend(scenario)
        with pytest.raises(ServingError):
            engine.swap_worker_drafter(7, untrained_drafter)
        with pytest.raises(ServingError):
            engine.swap_worker_drafter(0, object())


# -- segment dispatch ------------------------------------------------------


class _StubWorker:
    def __init__(self, backlog):
        self.backlog_tokens = backlog


class _StubRequest:
    def __init__(self, segment):
        self.segment = segment
        self.prompt = [5, 6]
        self.predicted_length = 4


class TestSegmentAffinityDispatch:
    def test_routes_by_placement_map(self):
        placement = {"a": 1}
        policy = SegmentAffinityDispatch(placement)
        workers = [_StubWorker(0), _StubWorker(100)]
        # Tagged + mapped: the home worker wins despite its load.
        assert policy.choose(_StubRequest("a"), workers) == 1
        # Untagged and unmapped fall through to least-loaded.
        assert policy.choose(_StubRequest(None), workers) == 0
        assert policy.choose(_StubRequest("zzz"), workers) == 0
        # The map is live: the zoo can re-place mid-run.
        placement["a"] = 0
        assert policy.choose(_StubRequest("a"), workers) == 0

    def test_stale_placement_falls_back(self):
        policy = SegmentAffinityDispatch({"a": 9})
        workers = [_StubWorker(3), _StubWorker(1)]
        assert policy.choose(_StubRequest("a"), workers) == 1


# -- the zoo ---------------------------------------------------------------


def _report(accepted, drafted):
    return ServingReport(
        records=[], ticks=0.0,
        worker_busy_cycles=[], worker_target_steps=[],
        segment_accepted=dict(accepted),
        segment_drafted=dict(drafted),
    )


class TestDrafterZoo:
    def _zoo(self, trained, untrained, **kwargs):
        defaults = dict(
            arms={"shared": trained, "spec": untrained},
            segments=["seg0", "seg1"],
            epsilon=0.0,
        )
        defaults.update(kwargs)
        return DrafterZoo(**defaults)

    def test_validation(self, trained_drafter, untrained_drafter):
        with pytest.raises(ConfigError):
            DrafterZoo(arms={}, segments=["a"])
        with pytest.raises(ConfigError):
            DrafterZoo(
                arms={"x": trained_drafter}, segments=[]
            )
        with pytest.raises(ConfigError):
            DrafterZoo(
                arms={"x": trained_drafter}, segments=["a", "a"]
            )
        with pytest.raises(ConfigError):
            DrafterZoo(
                arms={"x": trained_drafter}, segments=["a"],
                epsilon=1.5,
            )
        with pytest.raises(ConfigError):
            DrafterZoo(arms={"x": object()}, segments=["a"])
        with pytest.raises(ConfigError):
            DrafterZoo(
                arms={"x": trained_drafter}, segments=["a"],
                window=0,
            )

    def test_place_round_robin_and_publish(
        self, scenario_factory, trained_drafter, untrained_drafter
    ):
        scenario = scenario_factory(90)
        engine = _frontend(scenario)  # 2 workers
        zoo = self._zoo(trained_drafter, untrained_drafter)
        placement = zoo.place(engine)
        assert placement == {"seg0": 0, "seg1": 1}
        assert zoo.home_worker("seg0") == 0
        # Both segments published their (unexplored-first) arm.
        assert zoo.publications == 2
        with pytest.raises(Exception):
            zoo.home_worker("nope")

    def test_unexplored_first_then_exploit(
        self, trained_drafter, untrained_drafter
    ):
        zoo = self._zoo(trained_drafter, untrained_drafter)
        # No data: alphabetically-first unexplored arm.
        assert zoo.select("seg0") == "shared"
        bandit = zoo._bandits["seg0"]
        bandit.windows["shared"].append(0.5)
        # One arm still unexplored: it goes next.
        assert zoo.select("seg0") == "spec"
        bandit.windows["spec"].append(0.9)
        # Both explored: best window mean wins.
        assert zoo.select("seg0") == "spec"
        bandit.windows["spec"].append(0.0)
        bandit.windows["spec"].append(0.0)
        assert zoo.select("seg0") == "shared"

    def test_observe_report_scores_deltas(
        self, scenario_factory, trained_drafter, untrained_drafter
    ):
        scenario = scenario_factory(91)
        engine = _frontend(scenario)
        zoo = self._zoo(trained_drafter, untrained_drafter)
        zoo.place(engine)
        current = zoo._bandits["seg0"].current_arm
        zoo.observe_report(
            _report({"seg0": 5, "seg1": 0}, {"seg0": 10, "seg1": 0})
        )
        window = zoo._bandits["seg0"].windows[current]
        assert list(window) == [0.5]
        # seg1 had no drafted tokens: no evidence, no score.
        seg1_arm = zoo._bandits["seg1"].current_arm
        assert zoo._bandits["seg1"].windows[seg1_arm].is_empty
        # Cumulative counters: only the delta is scored.
        zoo.observe_report(
            _report({"seg0": 14, "seg1": 2}, {"seg0": 20, "seg1": 2})
        )
        assert list(window) == [0.5, 0.9]
        assert list(
            zoo._bandits["seg1"].windows[seg1_arm]
        ) == [1.0]

    def test_publish_skips_noop_swaps(
        self, scenario_factory, trained_drafter, untrained_drafter
    ):
        scenario = scenario_factory(92)
        engine = _frontend(scenario)
        zoo = self._zoo(trained_drafter, untrained_drafter)
        zoo.place(engine)
        published = zoo.publications
        # Re-publishing the same selection must not churn the queue.
        zoo._bandits["seg0"].windows["shared"].append(0.9)
        zoo._bandits["seg0"].windows["spec"].append(0.1)
        # Drain pending swaps so current_arm reflects reality.
        engine.tick()
        engine.tick()
        before = engine.worker_swaps
        choice = zoo.publish(engine, "seg0")
        assert choice == "shared"
        assert zoo.publications == published  # no-op skipped
        engine.tick()
        assert engine.worker_swaps == before

    def test_refresh_arm_clears_and_republishes(
        self, scenario_factory, trained_drafter, untrained_drafter
    ):
        scenario = scenario_factory(93)
        engine = _frontend(scenario)
        zoo = self._zoo(trained_drafter, untrained_drafter)
        zoo.place(engine)
        for _ in range(2):
            engine.tick()
        hosted = {
            seg: zoo._bandits[seg].current_arm
            for seg in zoo.segments
        }
        zoo._bandits["seg0"].windows[hosted["seg0"]].append(0.4)
        fresh = scenario.drafter  # any hot-swappable drafter object
        zoo.refresh_arm(engine, hosted["seg0"], fresh)
        assert zoo.refreshes == 1
        assert zoo.arms[hosted["seg0"]] is fresh
        # Old scores described the old weights.
        for seg in zoo.segments:
            assert zoo._bandits[seg].windows[
                hosted["seg0"]
            ].is_empty
        # Republished to the hosting worker.
        engine.tick()
        engine.tick()
        home = zoo.home_worker("seg0")
        assert engine.workers[home].engine.drafter is fresh
        with pytest.raises(Exception):
            zoo.refresh_arm(engine, "unknown", fresh)

    def test_snapshot_shape(
        self, trained_drafter, untrained_drafter
    ):
        zoo = self._zoo(trained_drafter, untrained_drafter)
        zoo.select("seg0")
        snap = zoo.snapshot()
        assert set(snap) == {"seg0", "seg1"}
        row = snap["seg0"]
        assert row["selections"] == 1.0
        assert "mean_accept[shared]" in row
        assert "observations[spec]" in row
