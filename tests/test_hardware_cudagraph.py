"""Tests for the CUDAGraph capture pool and plans (Figure 10, Table 5)."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError, OutOfMemoryError
from repro.hardware import (
    CaptureKey,
    CudaGraphPool,
    bucketed_plan,
    get_gpu,
    get_model,
    single_strategy_plan,
    vanilla_multi_plan,
)
from repro.specdec import SdStrategy, default_strategy_pool


@pytest.fixture()
def pool():
    return CudaGraphPool(
        get_model("Llama-3-8B"), get_gpu("H100"), tensor_parallel=4,
        memory_budget_gb=200,
    )


@pytest.fixture()
def strategies():
    return default_strategy_pool()


class TestCaptureKey:
    def test_bad_role(self):
        with pytest.raises(HardwareModelError):
            CaptureKey("policy", 1, 1)

    def test_bad_sizes(self):
        with pytest.raises(HardwareModelError):
            CaptureKey("target", 0, 1)


class TestPool:
    def test_capture_idempotent(self, pool):
        key = CaptureKey("target", 4, 49)
        first = pool.capture(key)
        again = pool.capture(key)
        assert first == again
        assert pool.num_graphs == 1

    def test_memory_budget_enforced(self):
        pool = CudaGraphPool(
            get_model("Llama-3-8B"), get_gpu("H100"),
            tensor_parallel=4, memory_budget_gb=0.5,
        )
        with pytest.raises(OutOfMemoryError):
            pool.capture(CaptureKey("target", 32, 49))

    def test_larger_bucket_costs_more(self, pool):
        small = pool.graph_bytes(CaptureKey("target", 1, 49))
        large = pool.graph_bytes(CaptureKey("target", 32, 49))
        assert large > small

    def test_draft_cheaper_than_target(self, pool):
        target = pool.graph_bytes(CaptureKey("target", 8, 49))
        draft = pool.graph_bytes(CaptureKey("draft", 8, 8))
        assert draft < target

    def test_lookup_smallest_covering_bucket(self, pool, strategies):
        pool.capture_plan(single_strategy_plan(strategies[0]))
        target_key, _ = pool.lookup(strategies[0], batch_size=3)
        assert target_key.batch_bucket == 4

    def test_lookup_unknown_strategy_raises(self, pool, strategies):
        pool.capture_plan(single_strategy_plan(strategies[0]))
        with pytest.raises(HardwareModelError):
            pool.lookup(strategies[1], batch_size=1)


class TestPlans:
    def test_table5_ordering(self, strategies):
        """bucketed ≈ single << vanilla-multi (the Table 5 shape)."""
        sizes = {}
        for name, plan in [
            ("single", single_strategy_plan(strategies[0])),
            ("multi", vanilla_multi_plan(strategies)),
            ("bucketed", bucketed_plan(strategies)),
        ]:
            pool = CudaGraphPool(
                get_model("Llama-3-8B"), get_gpu("H100"),
                tensor_parallel=4, memory_budget_gb=500,
            )
            pool.capture_plan(plan)
            sizes[name] = pool.total_gib
        assert sizes["multi"] > 2.5 * sizes["single"]
        assert sizes["bucketed"] < 0.6 * sizes["multi"]
        assert sizes["bucketed"] < 2.0 * sizes["single"]

    def test_vanilla_multi_no_sharing(self, strategies):
        plan = vanilla_multi_plan(strategies[:2])
        assert len(set(plan.keys)) == len(plan.keys)
        tags = {key.tag for key in plan.keys}
        assert len(tags) == 2

    def test_bucketed_merges_keys(self, strategies):
        plan = bucketed_plan(strategies)
        assert len(set(plan.keys)) == len(plan.keys)
        # Deduplication means fewer keys than the vanilla plan.
        assert len(plan.keys) < len(vanilla_multi_plan(strategies).keys)

    def test_bucketed_big_batches_verify_fewer_tokens(self, strategies):
        """Figure 10c(i): descending V maps to ascending buckets."""
        plan = bucketed_plan(strategies)
        by_bucket = {}
        for (strategy, bucket), (target_key, _) in plan.routing.items():
            by_bucket.setdefault(bucket, []).append(
                strategy.tokens_to_verify
            )
        buckets = sorted(by_bucket)
        smallest = min(by_bucket[buckets[0]])
        largest_bucket_max = max(by_bucket[buckets[-1]])
        assert smallest >= largest_bucket_max

    def test_boundary_overlap_gives_choices(self, strategies):
        """Some bucket must offer >= 2 strategies (MAB exploration)."""
        plan = bucketed_plan(strategies)
        per_bucket: dict = {}
        for (strategy, bucket) in plan.routing:
            per_bucket.setdefault(bucket, set()).add(strategy)
        assert any(len(s) >= 2 for s in per_bucket.values())

    def test_empty_strategies_raise(self):
        with pytest.raises(HardwareModelError):
            bucketed_plan([])
