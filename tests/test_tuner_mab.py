"""Tests for the BEG-MAB selector (Algorithm 1) and baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TunerError
from repro.specdec import SdStrategy
from repro.tuner import (
    BegMabSelector,
    PlainEpsilonGreedy,
    StaticSelector,
    StrategySelector,
    Ucb1Selector,
)


def make_strategies():
    return [
        SdStrategy(draft_depth=8, topk=8, tokens_to_verify=48),
        SdStrategy(draft_depth=10, topk=8, tokens_to_verify=48),
        SdStrategy(draft_depth=6, topk=6, tokens_to_verify=16),
        SdStrategy(draft_depth=4, topk=4, tokens_to_verify=8),
    ]


class TestRewardFormula:
    def test_algorithm1_lines_8_9(self):
        """reward = (sum(accepts)/batch + 1) * batch / elapsed."""
        reward, accept = StrategySelector.reward_of(
            elapsed_time=2.0, accept_lengths=[3.0, 5.0], batch_size=2
        )
        assert accept == pytest.approx(5.0)  # (8/2) + 1
        assert reward == pytest.approx(5.0 * 2 / 2.0)

    def test_validation(self):
        with pytest.raises(TunerError):
            StrategySelector.reward_of(0.0, [1.0], 1)
        with pytest.raises(TunerError):
            StrategySelector.reward_of(1.0, [1.0], 0)


class TestBegMab:
    def test_bucket_mapping(self):
        selector = BegMabSelector(
            make_strategies(), batch_thresholds=[1, 8, 32]
        )
        # Three verify groups: 48 -> [1,8), 16 -> [8,32), 8 -> [32,inf).
        assert all(
            s.tokens_to_verify == 48
            for s in selector.candidates(1)
        )
        assert all(
            s.tokens_to_verify == 16
            for s in selector.candidates(10)
        )
        assert all(
            s.tokens_to_verify == 8
            for s in selector.candidates(100)
        )

    def test_single_candidate_fixed(self):
        selector = BegMabSelector(
            make_strategies(), batch_thresholds=[1, 8, 32]
        )
        assert selector.select(100).tokens_to_verify == 8

    def test_exploitation_prefers_higher_median(self):
        strategies = make_strategies()
        selector = BegMabSelector(
            strategies, batch_thresholds=[1, 8, 32], epsilon=0.0,
            rng=np.random.default_rng(0),
        )
        good, bad = strategies[0], strategies[1]
        for _ in range(5):
            selector.record(good, 1.0, [4.0], 1)
            selector.record(bad, 2.0, [4.0], 1)
        for _ in range(10):
            assert selector.select(1) == good

    def test_unexplored_arms_tried_first(self):
        strategies = make_strategies()
        selector = BegMabSelector(
            strategies, batch_thresholds=[1, 8, 32], epsilon=0.0
        )
        first = selector.select(1)
        selector.record(first, 1.0, [4.0], 1)
        second = selector.select(1)
        assert second != first  # the other 48-verify arm gets its turn

    def test_exploration_rate(self):
        strategies = make_strategies()
        selector = BegMabSelector(
            strategies, batch_thresholds=[1, 8, 32], epsilon=1.0,
            rng=np.random.default_rng(0),
        )
        for s in strategies[:2]:
            selector.record(s, 1.0, [4.0], 1)
        seen = {selector.select(1) for _ in range(50)}
        assert len(seen) == 2  # pure exploration covers the bucket

    def test_sliding_window_adapts(self):
        """Old rewards age out: the bandit follows the drift (§5.2)."""
        strategies = make_strategies()
        selector = BegMabSelector(
            strategies, batch_thresholds=[1, 8, 32], epsilon=0.0,
            window_size=4, rng=np.random.default_rng(0),
        )
        fast, slow = strategies[0], strategies[1]
        for _ in range(4):
            selector.record(fast, 1.0, [4.0], 1)
            selector.record(slow, 3.0, [4.0], 1)
        assert selector.select(1) == fast
        # Workload drifts: "fast" becomes slow.
        for _ in range(4):
            selector.record(fast, 5.0, [4.0], 1)
            selector.record(slow, 1.0, [4.0], 1)
        assert selector.select(1) == slow

    def test_record_unknown_strategy_raises(self):
        selector = BegMabSelector(
            make_strategies(), batch_thresholds=[1, 8, 32]
        )
        rogue = SdStrategy(draft_depth=2, topk=2, tokens_to_verify=99)
        with pytest.raises(TunerError):
            selector.record(rogue, 1.0, [1.0], 1)

    def test_snapshot(self):
        selector = BegMabSelector(
            make_strategies(), batch_thresholds=[1, 8, 32]
        )
        strategy = make_strategies()[2]
        selector.record(strategy, 1.0, [2.0], 2)
        snap = selector.snapshot()
        assert snap[strategy.describe()]["observations"] == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(batch_thresholds=[]),
            dict(batch_thresholds=[8, 1]),
            dict(batch_thresholds=[1, 1]),
            dict(batch_thresholds=[0, 8]),
            dict(batch_thresholds=[1, 8, 32], epsilon=1.5),
            dict(batch_thresholds=[1, 8, 32], window_size=0),
            dict(batch_thresholds=[1]),  # fewer buckets than groups
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TunerError):
            BegMabSelector(make_strategies(), **kwargs)

    @given(st.integers(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_property_candidates_never_empty(self, batch):
        selector = BegMabSelector(
            make_strategies(), batch_thresholds=[1, 8, 32]
        )
        assert selector.candidates(batch)


class TestBaselines:
    def test_plain_epsilon_ignores_batch(self):
        strategies = make_strategies()
        selector = PlainEpsilonGreedy(
            strategies, epsilon=0.0, rng=np.random.default_rng(0)
        )
        # Can pick a 48-verify strategy even at batch 500 — the failure
        # mode BEG prevents.
        for s in strategies:
            selector.record(s, 1.0, [4.0], 1)
        selector.record(strategies[0], 0.5, [8.0], 1)
        assert selector.select(500).tokens_to_verify == 48

    def test_ucb_explores_all_arms_first(self):
        strategies = make_strategies()
        selector = Ucb1Selector(strategies)
        picked = []
        for _ in range(len(strategies)):
            s = selector.select(1)
            picked.append(s)
            selector.record(s, 1.0, [4.0], 1)
        assert set(picked) == set(strategies)

    def test_ucb_converges_to_best(self):
        strategies = make_strategies()[:2]
        selector = Ucb1Selector(strategies, exploration_coef=0.1)
        for _ in range(30):
            s = selector.select(1)
            elapsed = 1.0 if s == strategies[0] else 4.0
            selector.record(s, elapsed, [4.0], 1)
        picks = [selector.select(1) for _ in range(10)]
        assert picks.count(strategies[0]) >= 8

    def test_static(self):
        strategy = make_strategies()[0]
        selector = StaticSelector(strategy)
        assert selector.select(1) == strategy
        assert selector.select(999) == strategy
        selector.record(strategy, 1.0, [1.0], 1)  # no-op
