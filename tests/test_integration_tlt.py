"""End-to-end integration: the full TLT pipeline over several RL steps.

Wires every component together the way the paper's system does — GRPO
with speculative rollouts, hidden-state capture into the DataBuffer,
spot drafter training with selective async checkpointing, and n-gram
fallback — and asserts cross-component invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    EagleDrafter,
    EagleDrafterConfig,
    NgramDrafter,
    NgramDrafterConfig,
)
from repro.drafter.training import collect_training_sequences
from repro.llm import TinyLMConfig
from repro.llm.pretrain import pretrained_target
from repro.llm.vocab import Vocabulary
from repro.rl import RlConfig, RlTrainer, SpeculativeRollout
from repro.specdec import SdStrategy
from repro.spot import CheckpointManager, OnlineDataBuffer, SpotTrainer
from repro.workload import SuccessorChainTask


@pytest.fixture(scope="module")
def tlt_run(tmp_path_factory):
    """Run 4 TLT-style RL steps and return all the artefacts."""
    tmp_path = tmp_path_factory.mktemp("tlt")
    config = TinyLMConfig(
        vocab_size=24, hidden_size=24, context_window=4, num_layers=3,
        init_scale=0.8,
    )
    policy = pretrained_target(
        config, np.random.default_rng(0), corpus_sequences=48,
        corpus_length=40, epochs=120, chain_prob=0.75,
    )
    task = SuccessorChainTask(vocab=Vocabulary(24), target_pairs=8)
    drafter = EagleDrafter(
        policy, EagleDrafterConfig(), np.random.default_rng(1)
    )
    backend = SpeculativeRollout(
        drafter, SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
    )
    spot = SpotTrainer(
        trainer=DrafterTrainer(
            drafter, DrafterTrainingConfig(learning_rate=5e-3)
        ),
        buffer=OnlineDataBuffer(capacity_tokens=100_000),
        checkpoints=CheckpointManager(str(tmp_path)),
        batch_sequences=16,
        max_positions=512,
        checkpoint_every=10,
    )
    trainer = RlTrainer(
        policy, task,
        RlConfig(num_prompts=4, group_size=6, max_new_tokens=24,
                 temperature=1.0, learning_rate=5e-3, kl_coef=0.002),
        backend=backend,
        rng=np.random.default_rng(2),
    )
    spot_rng = np.random.default_rng(3)
    reports = []
    accept_lengths = []
    for step in range(4):
        spot.begin_step(step)
        report = trainer.step()
        reports.append(report)
        accept_lengths.append(
            report.rollout_stats.get("accept_length", 0.0)
        )
        assert trainer.last_rollout is not None
        spot.ingest(
            collect_training_sequences(
                policy, trainer.last_rollout.full_sequences, step
            )
        )
        spot.train_slice(15, spot_rng)
    spot.checkpoints.wait_all()
    return {
        "reports": reports,
        "accepts": accept_lengths,
        "spot": spot,
        "policy": policy,
        "drafter": drafter,
    }


class TestPipelineCoherence:
    def test_every_step_produced_rewards(self, tlt_run):
        for report in tlt_run["reports"]:
            assert 0.0 <= report.mean_reward <= 1.0
            assert np.isfinite(report.pg_loss)

    def test_speculation_active_every_step(self, tlt_run):
        for accept in tlt_run["accepts"]:
            assert accept >= 1.0

    def test_spot_training_ran(self, tlt_run):
        assert tlt_run["spot"].total_updates >= 45

    def test_buffer_holds_multiple_steps(self, tlt_run):
        stats = tlt_run["spot"].buffer.stats()
        assert stats.current_step == 3
        assert stats.num_sequences > 0

    def test_checkpoint_written_and_loadable(self, tlt_run):
        spot = tlt_run["spot"]
        path = spot.checkpoints.latest()
        assert path is not None
        state = spot.checkpoints.load(path)
        assert set(state) == set(
            tlt_run["drafter"].params.names()
        )

    def test_drafter_adapts_to_updated_policy(self, tlt_run):
        """Later-step accept lengths should not collapse even though the
        policy's weights moved (the whole point of spot training)."""
        accepts = tlt_run["accepts"]
        assert accepts[-1] >= accepts[0] - 0.5

    def test_policy_actually_updated(self, tlt_run):
        trainer_ref = tlt_run["reports"]
        policy = tlt_run["policy"]
        # Reference model differs from the trained policy after 4 steps.
        assert trainer_ref[-1].kl_value >= 0.0


class TestNgramFallbackPath:
    def test_model_free_backend_in_rl(self):
        """TLT-Base path: the n-gram drafter as the rollout accelerator
        with database feedback across steps."""
        config = TinyLMConfig(
            vocab_size=24, hidden_size=16, context_window=4,
            num_layers=2, init_scale=0.8,
        )
        policy = pretrained_target(
            config, np.random.default_rng(4), corpus_sequences=32,
            corpus_length=30, epochs=80, chain_prob=0.8,
        )
        task = SuccessorChainTask(vocab=Vocabulary(24), target_pairs=6)
        drafter = NgramDrafter(NgramDrafterConfig(vocab_size=24))
        backend = SpeculativeRollout(
            drafter,
            SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6),
        )
        trainer = RlTrainer(
            policy, task,
            RlConfig(num_prompts=3, group_size=4, max_new_tokens=20,
                     temperature=0.9, learning_rate=5e-3,
                     kl_coef=0.002),
            backend=backend,
            rng=np.random.default_rng(5),
        )
        first = trainer.step()
        # The database was fed by step 1's rollouts.
        assert drafter.num_contexts > 0
        second = trainer.step()
        assert second.rollout_stats["accept_length"] >= 1.0
        assert first.rollout_stats["accept_length"] >= 1.0
