"""Tests for the continuous-batching speculative generation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpecDecodeError
from repro.rl import AdaptiveSpeculativeRollout
from repro.rollout import AdaptiveSdConfig, AdaptiveSdManager
from repro.specdec import (
    BatchedSpecDecodeEngine,
    ContinuousBatchScheduler,
    SdStrategy,
    SequenceRequest,
    speculative_generate,
)

PROMPTS = [[5, 6, 7], [9, 10, 11], [4, 8, 12], [13, 14, 15],
           [6, 9, 13], [7, 11, 5], [12, 4, 9], [15, 13, 6]]


@pytest.fixture()
def strategy():
    return SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _generate(target, drafter, strategy, max_batch_size, seed=42,
              use_tree=True, max_new_tokens=40):
    return speculative_generate(
        target, drafter, PROMPTS, max_new_tokens=max_new_tokens,
        temperature=0.9, rng=np.random.default_rng(seed),
        strategy=strategy, use_tree=use_tree,
        max_batch_size=max_batch_size,
    )


class TestBatchedSequentialEquivalence:
    def test_tree_mode_tokens_identical(
        self, target, trained_drafter, strategy
    ):
        """The acceptance criterion: batched == sequential, token for
        token, under a fixed seed in sample child mode."""
        sequential = _generate(target, trained_drafter, strategy, 1)
        for max_batch in (2, 3, 5, None):
            batched = _generate(
                target, trained_drafter, strategy, max_batch
            )
            assert batched.responses == sequential.responses
            assert batched.finished == sequential.finished
            assert batched.prompts == sequential.prompts

    def test_linear_mode_tokens_identical(
        self, target, trained_drafter, strategy
    ):
        sequential = _generate(
            target, trained_drafter, strategy, 1, use_tree=False
        )
        batched = _generate(
            target, trained_drafter, strategy, None, use_tree=False
        )
        assert batched.responses == sequential.responses

    def test_untrained_drafter_equivalence(
        self, target, untrained_drafter, strategy
    ):
        """Holds regardless of drafter quality (more rejection paths)."""
        sequential = _generate(target, untrained_drafter, strategy, 1)
        batched = _generate(target, untrained_drafter, strategy, None)
        assert batched.responses == sequential.responses

    def test_fewer_target_launches_when_batched(
        self, target, trained_drafter, strategy
    ):
        """Batched verification amortises target forwards: strictly
        fewer launches than the sum of per-sequence launches."""
        sequential = _generate(target, trained_drafter, strategy, 1)
        batched = _generate(target, trained_drafter, strategy, None)
        assert batched.target_steps < sequential.target_steps
        # Total committed work is identical.
        assert (
            batched.metrics.total_committed
            == sequential.metrics.total_committed
        )

    def test_metrics_totals_match(
        self, target, trained_drafter, strategy
    ):
        sequential = _generate(target, trained_drafter, strategy, 1)
        batched = _generate(target, trained_drafter, strategy, 4)
        assert (
            batched.metrics.num_cycles == sequential.metrics.num_cycles
        )
        assert (
            batched.metrics.total_drafted
            == sequential.metrics.total_drafted
        )
        assert batched.metrics.mean_accept_length == pytest.approx(
            sequential.metrics.mean_accept_length
        )


class TestScheduler:
    def _requests(self, n):
        return [
            SequenceRequest(
                request_id=i, prompt=[1, 5 + i], max_new_tokens=4,
                rng=np.random.default_rng(i),
            )
            for i in range(n)
        ]

    def test_capacity_respected(self):
        scheduler = ContinuousBatchScheduler(
            self._requests(5), max_batch_size=2
        )
        admitted = scheduler.admit()
        assert len(admitted) == 2
        assert scheduler.num_live == 2
        assert scheduler.num_waiting == 3

    def test_fifo_admission_into_freed_slots(self):
        scheduler = ContinuousBatchScheduler(
            self._requests(3), max_batch_size=2
        )
        scheduler.admit()
        first = scheduler.live[0]
        first.commit([3, 3, 3, 3], eos_id=2)  # hits the cap
        retired = scheduler.retire_finished()
        assert retired == [first]
        admitted = scheduler.admit()
        assert [s.request.request_id for s in admitted] == [2]
        assert scheduler.num_live == 2

    def test_results_order_and_drain_guard(self):
        scheduler = ContinuousBatchScheduler(
            self._requests(3), max_batch_size=1
        )
        with pytest.raises(SpecDecodeError):
            scheduler.results()
        order = []
        while scheduler.has_work:
            scheduler.admit()
            slot = scheduler.live[0]
            slot.commit([2], eos_id=2)  # immediate EOS
            order.append(slot.request.request_id)
            scheduler.retire_finished()
        assert order == [0, 1, 2]
        results = scheduler.results()
        assert [s.request.request_id for s in results] == [0, 1, 2]
        assert all(s.done for s in results)

    def test_commit_truncates_at_eos_and_cap(self):
        request = SequenceRequest(
            request_id=0, prompt=[1], max_new_tokens=3,
            rng=np.random.default_rng(0),
        )
        slot = ContinuousBatchScheduler([request]).admit()[0]
        assert slot.commit([5, 2, 9], eos_id=2) == 2
        assert slot.response == [5, 2]
        assert slot.done and slot.finished

    def test_bad_capacity(self):
        with pytest.raises(SpecDecodeError):
            ContinuousBatchScheduler(self._requests(1), max_batch_size=0)


class TestCycleReports:
    def test_live_batch_trail(self, target, trained_drafter, strategy):
        out = _generate(target, trained_drafter, strategy, 3)
        assert out.cycle_reports
        for report in out.cycle_reports:
            assert 1 <= report.live_batch <= 3
            assert report.sd_active
            assert report.strategy == strategy
        assert (
            sum(r.committed_tokens for r in out.cycle_reports)
            == sum(out.response_lengths)
        )
        assert (
            sum(r.admitted for r in out.cycle_reports) == len(PROMPTS)
        )
        assert (
            sum(r.retired for r in out.cycle_reports) == len(PROMPTS)
        )

    def test_live_batch_shrinks_without_waiting_queue(
        self, target, trained_drafter, strategy
    ):
        """With every prompt admitted up front the live batch can only
        shrink — the paper's long-tail regime."""
        out = _generate(target, trained_drafter, strategy, None)
        sizes = [r.live_batch for r in out.cycle_reports]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == len(PROMPTS)


class TestAdaptiveIntegration:
    def _manager(self, threshold):
        return AdaptiveSdManager(
            AdaptiveSdConfig(
                strategies=[SdStrategy(3, 2, 6), SdStrategy(4, 2, 8)],
                activation_threshold=threshold,
            )
        )

    def test_requires_strategy_or_manager(self, target, trained_drafter):
        with pytest.raises(SpecDecodeError):
            BatchedSpecDecodeEngine(
                target, trained_drafter, strategy=None, temperature=0.9
            )

    def test_elastic_activation_on_real_batch(
        self, target, trained_drafter
    ):
        """Above the threshold the engine decodes vanilla; once the live
        batch shrinks to it, SD engages — driven by real dynamics."""
        manager = self._manager(threshold=4)
        out = speculative_generate(
            target, trained_drafter, PROMPTS, max_new_tokens=40,
            temperature=0.9, rng=np.random.default_rng(7),
            strategy=None, sd_manager=manager,
        )
        assert manager.activations == 1
        vanilla = [r for r in out.cycle_reports if not r.sd_active]
        sd = [r for r in out.cycle_reports if r.sd_active]
        assert vanilla and sd
        assert all(r.live_batch > 4 for r in vanilla)
        assert all(r.live_batch <= 4 for r in sd)
        assert all(r.strategy is None for r in vanilla)
        assert all(r.strategy is not None for r in sd)

    def test_bandit_window_matches_executed_sd_cycles(
        self, target, trained_drafter
    ):
        """Every SD cycle feeds the bandit exactly one measurement."""
        manager = self._manager(threshold=4)
        out = speculative_generate(
            target, trained_drafter, PROMPTS, max_new_tokens=30,
            temperature=0.9, rng=np.random.default_rng(8),
            strategy=None, sd_manager=manager,
        )
        sd_cycles = sum(1 for r in out.cycle_reports if r.sd_active)
        window = manager.selector.window_size
        observations = sum(
            v["observations"]
            for v in manager.selector.snapshot().values()
        )
        # Observations cannot exceed executed cycles; with few cycles
        # they match exactly (sliding windows have not wrapped).
        assert observations <= sd_cycles
        if sd_cycles <= window:
            assert observations == sd_cycles

    def test_adaptive_mode_is_seed_reproducible(
        self, target, trained_drafter
    ):
        """The bandit is fed a deterministic work-proxy cost, so even
        multi-arm adaptive runs replay exactly under a fixed seed."""
        def run():
            return speculative_generate(
                target, trained_drafter, PROMPTS, max_new_tokens=30,
                temperature=0.9, rng=np.random.default_rng(13),
                strategy=None, sd_manager=self._manager(threshold=4),
            )

        first, second = run(), run()
        assert first.responses == second.responses
        assert [r.strategy for r in first.cycle_reports] == [
            r.strategy for r in second.cycle_reports
        ]

    def test_reused_manager_reports_per_rollout_activations(
        self, target, trained_drafter
    ):
        backend = AdaptiveSpeculativeRollout(
            trained_drafter,
            sd_config=AdaptiveSdConfig(
                strategies=[SdStrategy(3, 2, 6)],
                activation_threshold=4,
            ),
        )
        for seed in (3, 4):
            out = backend.generate(
                target, PROMPTS, 20, 0.9, np.random.default_rng(seed)
            )
            assert out.stats["sd_activations"] == 1.0
        assert backend.manager.activations == 2

    def test_adaptive_backend_stats(self, target, trained_drafter):
        backend = AdaptiveSpeculativeRollout(
            trained_drafter,
            sd_config=AdaptiveSdConfig(
                strategies=[SdStrategy(3, 2, 6)],
                activation_threshold=4,
            ),
        )
        out = backend.generate(
            target, PROMPTS, 30, 0.9, np.random.default_rng(9)
        )
        assert len(out.responses) == len(PROMPTS)
        assert out.stats["sd_activations"] == 1.0
        assert out.stats["max_live_batch"] == float(len(PROMPTS))
        assert (
            out.stats["sd_cycles"] + out.stats["vanilla_cycles"] > 0
        )
        assert out.target_steps > 0
