"""Tests for the Worker Coordinator state machine."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.spot import WorkerCoordinator, WorkerState


@pytest.fixture()
def coordinator():
    coord = WorkerCoordinator(idle_threshold=2)
    for worker_id in range(4):
        coord.register_worker(worker_id, num_gpus=8)
    return coord


class TestRegistration:
    def test_duplicate_rejected(self, coordinator):
        with pytest.raises(SchedulingError):
            coordinator.register_worker(0)

    def test_initial_state_busy(self, coordinator):
        assert coordinator.counts()[WorkerState.BUSY] == 4

    def test_unknown_worker(self, coordinator):
        with pytest.raises(SchedulingError):
            coordinator.notify_state(99, WorkerState.IDLE)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            WorkerCoordinator(idle_threshold=0)


class TestPromotion:
    def test_below_threshold_no_training(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        assert coordinator.promote_idle_workers() == []
        assert coordinator.training_session is None

    def test_threshold_triggers_training(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        promoted = coordinator.promote_idle_workers(now=10.0)
        assert promoted == [0, 1]
        assert coordinator.counts()[WorkerState.TRAINING] == 2

    def test_leader_election_first_promoted(self, coordinator):
        coordinator.notify_state(2, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        # Lowest id among idle is promoted first and leads.
        assert coordinator.leader_id == 1

    def test_later_workers_join_session(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        session = coordinator.training_session
        assert session is not None
        coordinator.notify_state(2, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        assert coordinator.training_session.member_ids == [0, 1, 2]
        assert coordinator.leader_id == 0  # leader unchanged

    def test_once_session_live_single_idle_joins(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        coordinator.notify_state(3, WorkerState.IDLE)
        promoted = coordinator.promote_idle_workers()
        assert promoted == [3]

    def test_training_gpu_count(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        assert coordinator.training_gpu_count() == 16


class TestPreemption:
    def test_preempt_returns_workers(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        preempted = coordinator.preempt_training(now=20.0)
        assert preempted == [0, 1]
        assert coordinator.training_session is None
        assert coordinator.counts()[WorkerState.IDLE] == 2

    def test_preempt_without_session_noop(self, coordinator):
        assert coordinator.preempt_training() == []

    def test_rollout_complete_halts(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        halted = coordinator.rollout_complete(now=30.0)
        assert halted == [0, 1]
        assert ("rollout_complete" in
                [event for _, event in coordinator.events()])

    def test_leader_flag_cleared_on_preempt(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        coordinator.preempt_training()
        assert coordinator.leader_id is None

    def test_busy_notification_while_training(self, coordinator):
        """A worker reclaimed by rollout reports BUSY; it leaves the
        training pool."""
        coordinator.notify_state(0, WorkerState.IDLE)
        coordinator.notify_state(1, WorkerState.IDLE)
        coordinator.promote_idle_workers()
        coordinator.notify_state(0, WorkerState.BUSY, active_requests=5)
        assert coordinator.counts()[WorkerState.TRAINING] == 1

    def test_event_log_ordering(self, coordinator):
        coordinator.notify_state(0, WorkerState.IDLE, now=1.0)
        coordinator.notify_state(1, WorkerState.IDLE, now=2.0)
        coordinator.promote_idle_workers(now=3.0)
        times = [t for t, _ in coordinator.events()]
        assert times == sorted(times)
