"""Tests for the elastic autoscaling subsystem (repro.autoscale):
pressure signals, hysteresis policy edges + fuzzed invariants, and the
controller closed over a live fleet (zero-drop scale-in, victim
selection, SD nudges, audit trail, determinism)."""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.autoscale import (
    Autoscaler,
    HysteresisPolicy,
    PressureSnapshot,
    ScaleAction,
    ScaleDecision,
    ScalingPolicy,
    SignalAggregator,
)
from repro.errors import AutoscaleError, ConfigError
from repro.fleet import FleetEngine, ReplicaState
from repro.rollout.adaptive import AdaptiveSdConfig, AdaptiveSdManager
from repro.serving import ServingEngine
from repro.specdec import SdStrategy
from repro.specdec.control import RequestEvent, RequestEventKind
from repro.workload import flash_crowd_trace

STRATEGY = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)

HOLD = ScaleDecision(ScaleAction.HOLD)


def _pool(target, drafter, workers=2, max_batch=2, **kwargs):
    return ServingEngine(
        target, drafter, num_workers=workers, strategy=STRATEGY,
        temperature=0.9, max_batch_size=max_batch, **kwargs,
    )


def _crowd_trace(seed=7, num_base=20, num_crowd=40):
    return flash_crowd_trace(
        np.random.default_rng(seed),
        24,
        num_base=num_base,
        num_crowd=num_crowd,
        base_interarrival=4.0,
        crowd_interarrival=0.3,
        crowd_families=5,
    )


def _snapshot(
    live=0,
    queue_ewma=0.0,
    capacity=4,
    active=1,
    joining=0,
    draining=0,
    slope=0.0,
    time=0.0,
):
    return PressureSnapshot(
        time=time,
        queue_depth=int(queue_ewma),
        queue_ewma=queue_ewma,
        live_slots=live,
        slot_capacity=capacity,
        backlog_tokens=0,
        backlog_slope=slope,
        preemption_rate=0.0,
        spill_rate=0.0,
        active_replicas=active,
        joining_replicas=joining,
        draining_replicas=draining,
    )


class _Scripted(ScalingPolicy):
    """Replays a fixed decision sequence (HOLD once exhausted)."""

    name = "scripted"

    def __init__(self, decisions):
        self._decisions = list(decisions)

    def decide(self, snapshot):
        if self._decisions:
            return self._decisions.pop(0)
        return HOLD


class _StubReplica:
    def __init__(
        self,
        state=ReplicaState.ACTIVE,
        queued=0,
        live=0,
        capacity=2,
        backlog=0,
    ):
        self.state = state
        self.queued_requests = queued
        self.live_requests = live
        self.slot_capacity = capacity
        self.backlog_tokens = backlog


class _StubFleet:
    """Just enough fleet surface for SignalAggregator unit tests."""

    def __init__(self, replicas):
        self.replicas = replicas
        self.routing = types.SimpleNamespace(spills=0)
        self.clock = types.SimpleNamespace(now=0.0)
        self._callback = None

    def subscribe(self, callback):
        self._callback = callback

    def emit_preemption(self):
        self._callback(
            RequestEvent(
                kind=RequestEventKind.PREEMPTED,
                request_id=0,
                cycle=0,
            )
        )


class TestPressureSnapshot:
    def test_pressure_is_demand_over_capacity(self):
        snap = _snapshot(live=3, queue_ewma=5.0, capacity=4)
        assert snap.pressure == pytest.approx(2.0)

    def test_pressure_survives_zero_capacity(self):
        snap = _snapshot(live=2, queue_ewma=2.0, capacity=0)
        assert snap.pressure == pytest.approx(4.0)


class TestSignalAggregator:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            SignalAggregator(alpha=0.0)
        with pytest.raises(ConfigError):
            SignalAggregator(alpha=1.5)
        with pytest.raises(ConfigError):
            SignalAggregator(window=1)

    def test_sums_over_non_retired_replicas(self):
        fleet = _StubFleet([
            _StubReplica(queued=2, live=1, capacity=2, backlog=10),
            _StubReplica(queued=3, live=2, capacity=2, backlog=20),
            _StubReplica(
                state=ReplicaState.RETIRED, queued=9, live=9,
                capacity=9, backlog=99,
            ),
        ])
        snap = SignalAggregator(alpha=1.0).observe(fleet)
        assert snap.queue_depth == 5
        assert snap.live_slots == 3
        assert snap.slot_capacity == 4
        assert snap.backlog_tokens == 30
        assert snap.active_replicas == 2

    def test_draining_replica_counted_but_not_pressure(self):
        """A draining replica's residual work is not fleet demand —
        and its slots are not capacity arrivals can be routed onto."""
        fleet = _StubFleet([
            _StubReplica(queued=1, live=1, capacity=2),
            _StubReplica(
                state=ReplicaState.DRAINING, queued=0, live=2,
                capacity=2, backlog=50,
            ),
        ])
        snap = SignalAggregator(alpha=1.0).observe(fleet)
        assert snap.draining_replicas == 1
        assert snap.slot_capacity == 2
        assert snap.live_slots == 1
        assert snap.backlog_tokens == 0

    def test_joining_capacity_counts(self):
        """Imminent (JOINING) capacity is provisioned capacity:
        ignoring it would re-trigger scale-out during every warm-up."""
        fleet = _StubFleet([
            _StubReplica(capacity=2),
            _StubReplica(state=ReplicaState.JOINING, capacity=2),
        ])
        snap = SignalAggregator(alpha=1.0).observe(fleet)
        assert snap.joining_replicas == 1
        assert snap.slot_capacity == 4

    def test_queue_ewma_smooths(self):
        replica = _StubReplica(queued=8)
        fleet = _StubFleet([replica])
        aggregator = SignalAggregator(alpha=0.5)
        first = aggregator.observe(fleet)
        assert first.queue_ewma == pytest.approx(4.0)
        replica.queued_requests = 0
        second = aggregator.observe(fleet)
        assert second.queue_ewma == pytest.approx(2.0)

    def test_backlog_slope_tracks_growth(self):
        replica = _StubReplica(backlog=0)
        fleet = _StubFleet([replica])
        aggregator = SignalAggregator(window=4)
        for backlog in (0, 10, 20, 30):
            replica.backlog_tokens = backlog
            snap = aggregator.observe(fleet)
        assert snap.backlog_slope == pytest.approx(10.0)
        for _ in range(4):
            snap = aggregator.observe(fleet)
        assert snap.backlog_slope == pytest.approx(0.0)

    def test_preemptions_counted_per_tick(self):
        fleet = _StubFleet([_StubReplica()])
        aggregator = SignalAggregator(alpha=1.0)
        aggregator.attach(fleet)
        fleet.emit_preemption()
        fleet.emit_preemption()
        snap = aggregator.observe(fleet)
        assert snap.preemption_rate == pytest.approx(2.0)
        snap = aggregator.observe(fleet)
        assert snap.preemption_rate == pytest.approx(0.0)

    def test_spill_rate_uses_deltas(self):
        fleet = _StubFleet([_StubReplica()])
        fleet.routing.spills = 5
        aggregator = SignalAggregator(alpha=1.0)
        aggregator.attach(fleet)  # pre-existing spills not charged
        snap = aggregator.observe(fleet)
        assert snap.spill_rate == pytest.approx(0.0)
        fleet.routing.spills = 8
        snap = aggregator.observe(fleet)
        assert snap.spill_rate == pytest.approx(3.0)

    def test_one_aggregator_per_fleet(self):
        first = _StubFleet([_StubReplica()])
        second = _StubFleet([_StubReplica()])
        aggregator = SignalAggregator()
        aggregator.attach(first)
        aggregator.attach(first)  # idempotent
        with pytest.raises(ConfigError):
            aggregator.attach(second)
        with pytest.raises(ConfigError):
            aggregator.observe(second)

    def test_snapshot_history_kept(self):
        fleet = _StubFleet([_StubReplica()])
        aggregator = SignalAggregator()
        for _ in range(3):
            aggregator.observe(fleet)
        assert len(aggregator.snapshots) == 3


class TestHysteresisPolicyEdges:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            HysteresisPolicy(high_watermark=0.5, low_watermark=0.5)
        with pytest.raises(ConfigError):
            HysteresisPolicy(low_watermark=-0.1)
        with pytest.raises(ConfigError):
            HysteresisPolicy(min_replicas=0)
        with pytest.raises(ConfigError):
            HysteresisPolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigError):
            HysteresisPolicy(out_cooldown=-1)
        with pytest.raises(ConfigError):
            HysteresisPolicy(max_step=0)
        with pytest.raises(ConfigError):
            HysteresisPolicy(surge_factor=0.5)

    def test_holds_inside_band(self):
        policy = HysteresisPolicy(
            high_watermark=1.25, low_watermark=0.45
        )
        decision = policy.decide(
            _snapshot(live=3, capacity=4, active=2)
        )
        assert decision.is_hold

    def test_scales_out_above_high_watermark(self):
        policy = HysteresisPolicy(max_replicas=4)
        decision = policy.decide(
            _snapshot(live=5, queue_ewma=1.0, capacity=4, active=2)
        )
        assert decision.action is ScaleAction.SCALE_OUT
        assert decision.magnitude == 1
        assert "high watermark" in decision.reason

    def test_surge_scales_out_by_max_step(self):
        policy = HysteresisPolicy(
            max_replicas=8, max_step=3, surge_factor=2.0,
            high_watermark=1.25,
        )
        decision = policy.decide(
            _snapshot(live=40, capacity=4, active=1)
        )
        assert decision.action is ScaleAction.SCALE_OUT
        assert decision.magnitude == 3

    def test_scale_out_clamped_to_max_replicas(self):
        policy = HysteresisPolicy(
            max_replicas=4, max_step=3, surge_factor=1.0
        )
        decision = policy.decide(
            _snapshot(live=40, capacity=12, active=3)
        )
        assert decision.action is ScaleAction.SCALE_OUT
        assert decision.magnitude == 1  # 3 -> 4, never past the bound

    def test_out_cooldown_blocks_back_to_back(self):
        policy = HysteresisPolicy(out_cooldown=3, max_replicas=8)
        hot = _snapshot(live=20, capacity=4, active=2)
        assert policy.decide(hot).action is ScaleAction.SCALE_OUT
        assert policy.decide(hot).is_hold
        assert policy.decide(hot).is_hold
        assert policy.decide(hot).action is ScaleAction.SCALE_OUT

    def test_scale_in_needs_long_cooldown(self):
        policy = HysteresisPolicy(
            out_cooldown=0, in_cooldown=5, max_replicas=8
        )
        hot = _snapshot(live=20, capacity=4, active=4)
        idle = _snapshot(live=0, capacity=16, active=4)
        assert policy.decide(hot).action is ScaleAction.SCALE_OUT
        for _ in range(4):
            assert policy.decide(idle).is_hold
        assert policy.decide(idle).action is ScaleAction.SCALE_IN

    def test_never_scales_in_while_joining(self):
        policy = HysteresisPolicy(in_cooldown=0)
        idle = _snapshot(
            live=0, capacity=16, active=3, joining=1
        )
        for _ in range(20):
            assert policy.decide(idle).is_hold

    def test_growing_backlog_blocks_scale_in(self):
        policy = HysteresisPolicy(in_cooldown=0)
        idle_but_growing = _snapshot(
            live=0, capacity=16, active=3, slope=4.0
        )
        assert policy.decide(idle_but_growing).is_hold

    def test_scale_in_clamped_to_min_replicas(self):
        policy = HysteresisPolicy(
            min_replicas=2, in_cooldown=0, max_step=4
        )
        decision = policy.decide(
            _snapshot(live=0, capacity=12, active=3)
        )
        assert decision.action is ScaleAction.SCALE_IN
        assert decision.magnitude == 1  # 3 -> 2, never past the bound

    def test_nudges_at_bounds_with_cooldown(self):
        policy = HysteresisPolicy(
            min_replicas=1, max_replicas=2, nudge_cooldown=3
        )
        pinned_high = _snapshot(live=20, capacity=4, active=2)
        pinned_low = _snapshot(live=0, capacity=4, active=1)
        assert (
            policy.decide(pinned_high).action
            is ScaleAction.NUDGE_SD_DOWN
        )
        assert policy.decide(pinned_high).is_hold
        assert policy.decide(pinned_low).is_hold
        assert (
            policy.decide(pinned_low).action
            is ScaleAction.NUDGE_SD_UP
        )


class TestHysteresisPolicyFuzz:
    """Random pressure traces; the policy's invariants must hold."""

    WARMUP = 2

    def _drive(self, rng, policy, ticks=300):
        population = int(
            rng.integers(policy.min_replicas, policy.max_replicas + 1)
        )
        join_timers = []
        last_scale = None
        for tick in range(ticks):
            join_timers = [t - 1 for t in join_timers]
            promoted = sum(1 for t in join_timers if t <= 0)
            join_timers = [t for t in join_timers if t > 0]
            joining = len(join_timers)
            del promoted  # promotion only changes the split below
            snapshot = _snapshot(
                live=int(rng.integers(0, 40)),
                queue_ewma=float(rng.uniform(0.0, 20.0)),
                capacity=max(population * 4, 1),
                active=population - joining,
                joining=joining,
                slope=float(rng.uniform(-5.0, 5.0)),
                time=float(tick),
            )
            decision = policy.decide(snapshot)
            if decision.is_hold:
                continue
            if decision.action is ScaleAction.SCALE_OUT:
                if last_scale is not None:
                    assert tick - last_scale >= policy.out_cooldown, (
                        "scale-out inside cooldown"
                    )
                population += decision.magnitude
                join_timers.extend([self.WARMUP] * decision.magnitude)
                last_scale = tick
            elif decision.action is ScaleAction.SCALE_IN:
                assert joining == 0, "scale-in while a replica JOINING"
                if last_scale is not None:
                    assert tick - last_scale >= policy.in_cooldown, (
                        "scale-in inside cooldown"
                    )
                population -= decision.magnitude
                last_scale = tick
            assert (
                policy.min_replicas
                <= population
                <= policy.max_replicas
            ), "population left the configured bounds"

    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_hold_under_random_pressure(self, seed):
        rng = np.random.default_rng(seed)
        policy = HysteresisPolicy(
            high_watermark=float(rng.uniform(0.9, 1.6)),
            low_watermark=float(rng.uniform(0.1, 0.6)),
            min_replicas=int(rng.integers(1, 3)),
            max_replicas=int(rng.integers(4, 9)),
            out_cooldown=int(rng.integers(0, 5)),
            in_cooldown=int(rng.integers(5, 15)),
            max_step=int(rng.integers(1, 4)),
        )
        self._drive(rng, policy)


class TestAutoscalerConstruction:
    def test_rejects_bad_config(self, target, trained_drafter):
        fleet = FleetEngine([_pool(target, trained_drafter)])
        with pytest.raises(AutoscaleError):
            Autoscaler(fleet, sd_step=0)
        with pytest.raises(AutoscaleError):
            Autoscaler(fleet, min_sd_threshold=8, max_sd_threshold=4)

    def test_scale_out_without_factory_raises(
        self, target, trained_drafter
    ):
        fleet = FleetEngine([_pool(target, trained_drafter)])
        scaler = Autoscaler(
            fleet,
            policy=_Scripted(
                [ScaleDecision(ScaleAction.SCALE_OUT, 1, "forced")]
            ),
        )
        fleet.tick()
        with pytest.raises(AutoscaleError):
            scaler.on_tick(fleet)

    def test_on_tick_rejects_foreign_fleet(
        self, target, trained_drafter
    ):
        fleet = FleetEngine([_pool(target, trained_drafter)])
        other = FleetEngine([_pool(target, trained_drafter)])
        scaler = Autoscaler(fleet)
        with pytest.raises(AutoscaleError):
            scaler.on_tick(other)


class TestAutoscalerFlashCrowd:
    @pytest.fixture(scope="class")
    def crowd_run(self, target, trained_drafter):
        trace = _crowd_trace()

        def pool():
            return _pool(
                target, trained_drafter, kv_cache_tokens=4096
            )

        fleet = FleetEngine([pool()], warmup_ticks=2)
        scaler = Autoscaler(
            fleet,
            replica_factory=pool,
            policy=HysteresisPolicy(
                min_replicas=1, max_replicas=4,
                high_watermark=1.25, low_watermark=0.45,
                out_cooldown=3, in_cooldown=12,
            ),
        )
        report = fleet.run(trace, on_tick=scaler.on_tick)
        return trace, fleet, scaler, report

    def test_crowd_triggers_scale_out_then_in(self, crowd_run):
        _, _, scaler, _ = crowd_run
        actions = [e.decision.action for e in scaler.events]
        assert ScaleAction.SCALE_OUT in actions
        assert ScaleAction.SCALE_IN in actions
        assert actions.index(ScaleAction.SCALE_OUT) < actions.index(
            ScaleAction.SCALE_IN
        )

    def test_zero_drop_under_elastic_membership(self, crowd_run):
        trace, _, _, report = crowd_run
        served = sorted(
            record.request.request_id
            for pool_report in report.replica_reports
            for record in pool_report.records
        )
        assert served == sorted(r.request_id for r in trace)

    def test_fleet_returns_to_min_size(self, crowd_run):
        _, fleet, _, _ = crowd_run
        active = [
            r for r in fleet.replicas
            if r.state is ReplicaState.ACTIVE
        ]
        assert len(active) == 1

    def test_every_event_is_auditable(self, crowd_run):
        _, _, scaler, _ = crowd_run
        assert scaler.events
        for event in scaler.events:
            assert isinstance(event.snapshot, PressureSnapshot)
            assert event.decision.reason
            if event.decision.action in (
                ScaleAction.SCALE_OUT, ScaleAction.SCALE_IN
            ):
                assert event.replica_ids

    def test_ring_moves_fully_attributed(self, crowd_run):
        _, fleet, scaler, _ = crowd_run
        charged = sum(e.ring_moves for e in scaler.events)
        assert charged == fleet.routing.ring_moves
        assert charged > 0

    def test_audit_rows_mirror_events(self, crowd_run):
        _, _, scaler, _ = crowd_run
        rows = scaler.audit()
        assert len(rows) == len(scaler.events)
        for row, event in zip(rows, scaler.events):
            assert row == (
                event.time,
                event.decision.action.value,
                event.decision.magnitude,
                event.decision.reason,
            )

    def test_outputs_match_single_pool_reference(
        self, crowd_run, target, trained_drafter
    ):
        """Elastic membership moves placement and latency, never
        committed tokens: the autoscaled fleet's responses are
        byte-identical to one static pool serving the same trace."""
        trace, _, _, report = crowd_run
        reference = _pool(
            target, trained_drafter, kv_cache_tokens=4096
        ).run(trace, max_ticks=20_000)
        fleet_responses = {
            record.request.request_id: record.response
            for record in report.pooled().records
        }
        reference_responses = {
            record.request.request_id: record.response
            for record in reference.records
        }
        assert fleet_responses == reference_responses


class TestAutoscalerActuation:
    def test_scale_in_drains_coldest_replica(
        self, target, trained_drafter
    ):
        """The victim is the least-prefix-valuable replica — the one
        holding the least cached prefix state."""
        trace = flash_crowd_trace(
            np.random.default_rng(3), 24,
            num_base=10, num_crowd=6,
            base_interarrival=1.0, crowd_interarrival=1.0,
            base_families=2, crowd_families=1,
        )
        fleet = FleetEngine(
            [
                _pool(target, trained_drafter, kv_cache_tokens=4096)
                for _ in range(2)
            ],
        )
        scaler = Autoscaler(
            fleet,
            policy=_Scripted(
                [HOLD] * 12
                + [ScaleDecision(ScaleAction.SCALE_IN, 1, "scripted")]
            ),
        )
        report = fleet.run(trace, on_tick=scaler.on_tick)
        (event,) = [e for e in scaler.events if e.replica_ids]
        (victim_id,) = event.replica_ids
        warmth = {
            r.replica_id: snap_warmth
            for r, snap_warmth in (
                (r, r.cache_warmth) for r in fleet.replicas
            )
        }
        survivor_id = next(
            r.replica_id
            for r in fleet.replicas
            if r.replica_id != victim_id
        )
        assert warmth[victim_id] <= warmth[survivor_id]
        served = sorted(
            record.request.request_id
            for pool_report in report.replica_reports
            for record in pool_report.records
        )
        assert served == sorted(r.request_id for r in trace)

    def test_nudges_step_and_clamp_sd_threshold(
        self, target, trained_drafter
    ):
        config = AdaptiveSdConfig(
            strategies=[STRATEGY], activation_threshold=6
        )
        managers = [
            AdaptiveSdManager(config), AdaptiveSdManager(config)
        ]
        pool = ServingEngine(
            target, trained_drafter, num_workers=2,
            sd_managers=managers, temperature=0.9, max_batch_size=2,
        )
        fleet = FleetEngine([pool])
        scaler = Autoscaler(
            fleet,
            policy=_Scripted([
                ScaleDecision(ScaleAction.NUDGE_SD_DOWN, 1, "down"),
                ScaleDecision(ScaleAction.NUDGE_SD_DOWN, 1, "down"),
                ScaleDecision(ScaleAction.NUDGE_SD_UP, 1, "up"),
            ]),
            sd_step=4,
            min_sd_threshold=1,
            max_sd_threshold=8,
        )
        fleet.tick()
        scaler.on_tick(fleet)  # 6 -> 2
        assert config.activation_threshold == 2
        fleet.tick()
        scaler.on_tick(fleet)  # 2 -> clamped at 1
        assert config.activation_threshold == 1
        fleet.tick()
        scaler.on_tick(fleet)  # 1 -> 5
        assert config.activation_threshold == 5
        assert [e.sd_threshold for e in scaler.events] == [2, 1, 5]


class TestAutoscaledFleetBuilder:
    def test_system_builder_rides_the_crowd(
        self, target, trained_drafter
    ):
        from repro.cluster import ClusterSpec
        from repro.hardware import get_gpu, get_model
        from repro.systems import TltSystem

        system = TltSystem(
            get_model("Qwen2.5-7B"),
            ClusterSpec(
                num_workers=2, gpus_per_worker=4, gpu=get_gpu("H100")
            ),
        )
        scaler = system.autoscaled_fleet(
            target,
            trained_drafter,
            num_replicas=1,
            num_workers=2,
            warmup_ticks=2,
            policy=HysteresisPolicy(
                min_replicas=1, max_replicas=3,
                out_cooldown=3, in_cooldown=12,
            ),
            max_batch_size=2,
            strategy=STRATEGY,
        )
        trace = _crowd_trace(seed=11, num_base=12, num_crowd=30)
        report = scaler.fleet.run(trace, on_tick=scaler.on_tick)
        assert report.num_requests == len(trace)
        assert any(
            e.decision.action is ScaleAction.SCALE_OUT
            for e in scaler.events
        )
        assert len(scaler.fleet.replicas) > 1
