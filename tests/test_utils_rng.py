"""Tests for deterministic RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_children_independent(self):
        children = spawn_generators(0, 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_reproducible(self):
        a = spawn_generators(7, 3)[2].random(4)
        b = spawn_generators(7, 3)[2].random(4)
        assert np.allclose(a, b)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestRngFactory:
    def test_same_name_same_order_reproducible(self):
        f1, f2 = RngFactory(3), RngFactory(3)
        assert np.allclose(f1.get("a").random(4), f2.get("a").random(4))

    def test_request_order_does_not_matter(self):
        f1, f2 = RngFactory(3), RngFactory(3)
        f1.get("x")
        a = f1.get("y").random(4)
        b = f2.get("y").random(4)
        assert np.allclose(a, b)

    def test_distinct_names_independent_streams(self):
        f = RngFactory(3)
        a = f.get("a").random(50)
        b = f.get("b").random(50)
        assert not np.allclose(a, b)

    def test_repeated_name_advances_stream(self):
        f = RngFactory(3)
        a = f.get("a").random(4)
        b = f.get("a").random(4)
        assert not np.allclose(a, b)

    def test_get_many(self):
        f = RngFactory(3)
        gens = f.get_many(["a", "b"])
        assert set(gens) == {"a", "b"}

    def test_seed_property(self):
        assert RngFactory(11).seed == 11
