"""Tests for the paged block-granular KV cache.

Four layers are pinned here:

* the accounting bugfixes — the same-wave duplicate-of-a-hit double
  count (one cache consultation per distinct prompt per wave), the
  effective-context cache key (prompts identical in the model's window
  share cache state), and the ``rejected_pinned``/``rejected_oversize``
  split;
* the block manager — multi-block chains, copy-on-write sharing of
  prefix blocks between diverging keys, partial-prefix admission plans,
  and interior hand-off backfill;
* tiered eviction — demotion under HOT pressure, promotion on
  re-touch, COLD-tier eviction, and the per-tier counters;
* the engine's token-granular prefill accounting — block-granular
  admission prefills strictly fewer prompt tokens than exact-match
  caching on a shared-prefix wave, with outputs byte-identical to the
  no-cache reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import KVCacheManager
from repro.drafter import EagleDrafter, EagleDrafterConfig
from repro.errors import CacheError
from repro.llm import TinyLM, TinyLMConfig
from repro.serving.metrics import ServingReport
from repro.specdec import (
    BatchedSpecDecodeEngine,
    SdStrategy,
    make_serving_request,
)


@pytest.fixture()
def strategy():
    return SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _requests(prompts, seed=42, max_new_tokens=24, start_id=0):
    rng = np.random.default_rng(seed)
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=len(prompts))
    return [
        make_serving_request(
            request_id=start_id + i,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            seed=int(seeds[i]),
        )
        for i, prompt in enumerate(prompts)
    ]


def _engine(target, drafter, strategy, **kwargs):
    return BatchedSpecDecodeEngine(
        target, drafter, strategy, temperature=0.8, **kwargs
    )


def _drain(engine):
    while engine.has_work:
        engine.step()
    return engine.result()


def _handoff(fill=0.0, shape=(3, 16)):
    return np.full(shape, fill)


class TestAccountingBugfixes:
    def test_same_wave_duplicate_of_hit_counts_one_hit(
        self, target, trained_drafter, strategy
    ):
        # Regression: a same-wave duplicate of a prompt whose leader
        # was a cache HIT used to fall through to a second
        # cache.lookup, recording one extra hit per group member.
        cache = KVCacheManager(capacity_tokens=64)
        engine = _engine(
            target, trained_drafter, strategy, kv_cache=cache
        )
        engine.start(_requests([[5, 6, 7]]))
        _drain(engine)
        assert cache.stats.misses == 1  # the warming run
        assert cache.stats.hits == 0
        # Warm wave: a whole GRPO group of the cached prompt.
        engine.start(_requests([[5, 6, 7]] * 3))
        engine.step()
        # ONE consultation for the wave (the leader's hit); the two
        # duplicates ride it without touching hit/miss counters.
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert engine.prefill_launches == 0
        assert engine.prefill_launches_saved == 3

    def test_window_equivalent_prompts_share_cache(
        self, target, trained_drafter, strategy
    ):
        # Both prompts end in the same trailing context_window=4 run of
        # p[:-1], so their hand-offs are bit-equal by purity — the
        # cache must key on that effective context, not the full
        # prompt (which would miss and recompute).
        p1 = [5, 6, 7, 20, 21, 22, 23, 13]
        p2 = [9, 10, 11, 20, 21, 22, 23, 13]
        reference = _engine(target, trained_drafter, strategy)
        reference.start(_requests([p1], seed=7))
        ref1 = _drain(reference)
        reference.start(_requests([p2], seed=8))
        ref2 = _drain(reference)
        cache = KVCacheManager(capacity_tokens=64)
        engine = _engine(
            target, trained_drafter, strategy, kv_cache=cache
        )
        assert cache.context_window == target.config.context_window
        engine.start(_requests([p1], seed=7))
        out1 = _drain(engine)
        assert cache.stats.misses == 1
        engine.start(_requests([p2], seed=8))
        out2 = _drain(engine)
        assert cache.stats.hits == 1  # cross-prompt effective-key hit
        assert [s.response for s in out1.slots] == [
            s.response for s in ref1.slots
        ]
        assert [s.response for s in out2.slots] == [
            s.response for s in ref2.slots
        ]

    def test_rejected_split_oversize(self):
        cache = KVCacheManager(capacity_tokens=2)
        assert not cache.insert((1, 2, 3), _handoff(), cycle=0)
        assert cache.stats.rejected_oversize == 1
        assert cache.stats.rejected_pinned == 0
        assert cache.stats.rejected == 1
        assert cache.num_entries == 0

    def test_rejected_split_pinned(self):
        cache = KVCacheManager(capacity_tokens=4)
        assert cache.insert((1, 2, 3), _handoff(1.0), cycle=0)
        assert cache.acquire((1, 2, 3))
        assert not cache.insert((4, 5, 6), _handoff(2.0), cycle=1)
        assert cache.stats.rejected_pinned == 1
        assert cache.stats.rejected_oversize == 0
        assert cache.stats.rejected == 1
        assert cache.contains((1, 2, 3))  # pinned entry untouched


class TestBlockManager:
    def test_multi_block_chain_and_partial_reuse(self):
        cache = KVCacheManager(capacity_tokens=64, block_size=2)
        key = (1, 2, 3, 4, 5, 6)
        assert cache.insert(key, _handoff(1.0), cycle=0)
        # Three blocks: (1,2), (1..4), (1..6); only the tail holds the
        # hand-off.
        assert cache.num_entries == 3
        assert cache.stats.insertions == 3
        assert cache.cached_tokens == 6
        hit = cache.lookup(key, cycle=1)
        assert hit is not None and np.array_equal(hit, _handoff(1.0))
        # A diverging key reuses the two whole shared blocks and plans
        # to compute only from position 4.
        plan = cache.plan_admission((1, 2, 3, 4, 9, 9), cycle=2)
        assert plan.hidden is None
        assert plan.compute_start == 4
        assert plan.reused_tokens == 4
        assert cache.stats.partial_hits == 1
        assert cache.stats.reused_tokens == 4

    def test_copy_on_write_sharing(self):
        cache = KVCacheManager(capacity_tokens=64, block_size=2)
        cache.insert((1, 2, 3, 4, 5, 6), _handoff(1.0), cycle=0)
        # The divergent key admits ONLY its divergent tail block; the
        # shared prefix blocks are shared, not copied.
        assert cache.insert_chain(
            (1, 2, 3, 4, 9, 9), {6: _handoff(2.0)}, cycle=1
        )
        assert cache.num_entries == 4
        assert cache.stats.insertions == 4
        assert cache.cached_tokens == 8  # 6 + 2, not 6 + 6
        first = cache.lookup((1, 2, 3, 4, 5, 6), cycle=2)
        second = cache.lookup((1, 2, 3, 4, 9, 9), cycle=2)
        assert np.array_equal(first, _handoff(1.0))
        assert np.array_equal(second, _handoff(2.0))

    def test_interior_handoff_backfill(self):
        cache = KVCacheManager(capacity_tokens=64, block_size=2)
        cache.insert((1, 2, 3, 4), _handoff(1.0), cycle=0)
        # The interior block (1,2) was admitted without a hand-off: it
        # licenses prefix reuse but cannot serve an exact hit yet.
        assert cache.contains((1, 2))
        assert cache.lookup((1, 2), cycle=1) is None
        assert cache.insert_chain((1, 2), {2: _handoff(3.0)}, cycle=2)
        assert np.array_equal(
            cache.lookup((1, 2), cycle=3), _handoff(3.0)
        )
        # Backfill refreshed the block in place, no duplicate entry.
        assert cache.num_entries == 2

    def test_chain_pins_are_atomic(self):
        cache = KVCacheManager(capacity_tokens=64, block_size=2)
        cache.insert((1, 2, 3, 4), _handoff(1.0), cycle=0)
        assert cache.acquire((1, 2, 3, 4))
        assert cache.refcount((1, 2, 3, 4)) == 1
        assert cache.refcount((1, 2)) == 1  # whole chain pinned
        assert not cache.acquire((1, 2, 3, 4, 5, 6))  # absent tail
        assert cache.release((1, 2, 3, 4))
        assert cache.refcount((1, 2)) == 0
        with pytest.raises(CacheError):
            cache.release((1, 2, 3, 4))

    def test_pending_blocks_extend_same_wave_reuse(self):
        # Blocks another leader of the same wave is computing count as
        # reusable without touching cache statistics.
        cache = KVCacheManager(capacity_tokens=64, block_size=2)
        pending = frozenset({(1, 2), (1, 2, 3, 4)})
        plan = cache.plan_admission(
            (1, 2, 3, 4, 9), cycle=0, pending=pending
        )
        assert plan.compute_start == 4
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0


class TestTieredEviction:
    def test_demotion_and_promotion_on_retouch(self):
        cache = KVCacheManager(
            capacity_tokens=4, block_size=None, cold_capacity_tokens=8
        )
        cache.insert((1, 2, 3), _handoff(1.0), cycle=0)
        cache.insert((4, 5, 6), _handoff(2.0), cycle=1)
        # HOT pressure demoted the first key instead of dropping it.
        assert cache.stats.demotions == 1
        assert cache.stats.evictions == 0
        assert cache.hot_tokens == 3 and cache.cold_tokens == 3
        assert cache.contains((1, 2, 3))
        # Re-touch promotes it back (demoting the other key down).
        hit = cache.lookup((1, 2, 3), cycle=2)
        assert np.array_equal(hit, _handoff(1.0))
        assert cache.stats.cold_hits == 1
        assert cache.stats.promotions == 1
        assert cache.stats.demotions == 2
        assert cache.hot_tokens == 3 and cache.cold_tokens == 3

    def test_cold_tier_eviction_when_budget_exhausted(self):
        cache = KVCacheManager(
            capacity_tokens=4, block_size=None, cold_capacity_tokens=4
        )
        cache.insert((1, 2, 3), _handoff(1.0), cycle=0)
        cache.insert((4, 5, 6), _handoff(2.0), cycle=1)
        cache.insert((7, 8, 9), _handoff(3.0), cycle=2)
        # First insert demoted; second demotion needed COLD room and
        # evicted the oldest COLD resident entirely.
        assert cache.stats.demotions == 2
        assert cache.stats.cold_evictions == 1
        assert cache.stats.evictions == 1
        assert not cache.contains((1, 2, 3))
        assert cache.contains((4, 5, 6))
        assert cache.contains((7, 8, 9))

    def test_zero_cold_budget_is_legacy_drop(self):
        cache = KVCacheManager(capacity_tokens=4, block_size=None)
        cache.insert((1, 2, 3), _handoff(1.0), cycle=0)
        cache.insert((4, 5, 6), _handoff(2.0), cycle=1)
        assert cache.stats.demotions == 0
        assert cache.stats.evictions == 1
        assert cache.cold_tokens == 0
        assert not cache.contains((1, 2, 3))

    def test_pinned_blocks_never_demoted(self):
        cache = KVCacheManager(
            capacity_tokens=4, block_size=None, cold_capacity_tokens=8
        )
        cache.insert((1, 2, 3), _handoff(1.0), cycle=0)
        assert cache.acquire((1, 2, 3))
        assert not cache.insert((4, 5, 6), _handoff(2.0), cycle=1)
        assert cache.stats.demotions == 0
        assert cache.stats.rejected_pinned == 1
        assert cache.hot_tokens == 3


class TestBlockGranularPrefill:
    """Engine-level token accounting on a wide-window substrate.

    The session fixtures run a context_window=4 target whose effective
    keys are single blocks; block-granular savings need keys spanning
    several blocks, so these tests build a window-16 target.  The
    drafter is untrained — speculative decoding is lossless regardless
    of drafter quality, and these tests assert accounting and
    byte-identity, not accept length.
    """

    @pytest.fixture(scope="class")
    def wide(self):
        config = TinyLMConfig(
            vocab_size=24,
            hidden_size=16,
            context_window=16,
            num_layers=2,
            init_scale=1.5,
        )
        rng = np.random.default_rng(321)
        target = TinyLM(config, rng)
        drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
        return target, drafter

    @pytest.fixture(scope="class")
    def grouped_prompts(self):
        # Four prompts sharing a 12-token system prefix and diverging
        # in their last two tokens: with BOS the effective keys are 14
        # tokens sharing their leading 13 — whole blocks 4/8/12 under
        # block_size=4.
        system = [5, 6, 7, 9, 10, 11, 4, 8, 12, 13, 14, 15]
        return [system + [suffix, 20] for suffix in (3, 6, 9, 17)]

    def _run(self, target, drafter, strategy, prompts, **kwargs):
        engine = _engine(target, drafter, strategy, **kwargs)
        engine.start(_requests(prompts, max_new_tokens=8))
        return engine, _drain(engine)

    def test_paged_prefills_fewer_tokens_than_exact(
        self, wide, grouped_prompts, strategy
    ):
        target, drafter = wide
        _, base = self._run(target, drafter, strategy, grouped_prompts)
        exact_cache = KVCacheManager(
            capacity_tokens=256, block_size=None
        )
        exact_engine, exact = self._run(
            target, drafter, strategy, grouped_prompts,
            kv_cache=exact_cache,
        )
        paged_cache = KVCacheManager(capacity_tokens=256, block_size=4)
        paged_engine, paged = self._run(
            target, drafter, strategy, grouped_prompts,
            kv_cache=paged_cache,
        )
        key_tokens = 4 * 14  # four effective keys of 14 tokens
        # Exact-match caching can only coalesce identical prompts —
        # these four are all distinct, so it prefills every token.
        assert exact_engine.prefill_tokens == key_tokens
        # Block-granular admission shares the 12 whole-block prefix
        # tokens across the wave: 14 + 3 * 2 = 20.
        assert paged_engine.prefill_tokens == 20
        assert (
            paged_engine.prefill_tokens
            < exact_engine.prefill_tokens
        )
        # Conservation: computed + saved covers every admitted key.
        for engine in (exact_engine, paged_engine):
            assert (
                engine.prefill_tokens + engine.prefill_tokens_saved
                == key_tokens
            )
        # Outputs are byte-identical to the no-cache reference.
        reference = [s.response for s in base.slots]
        assert [s.response for s in exact.slots] == reference
        assert [s.response for s in paged.slots] == reference

    def test_warm_paged_cache_serves_exact_hits(
        self, wide, grouped_prompts, strategy
    ):
        target, drafter = wide
        cache = KVCacheManager(capacity_tokens=256, block_size=4)
        engine, cold = self._run(
            target, drafter, strategy, grouped_prompts, kv_cache=cache
        )
        engine.start(_requests(grouped_prompts, max_new_tokens=8))
        warm = _drain(engine)
        assert engine.prefill_tokens == 0
        assert engine.prefill_launches == 0
        assert cache.stats.hits == 4
        assert [s.response for s in warm.slots] == [
            s.response for s in cold.slots
        ]


class TestReportPlumbing:
    def test_serving_report_sums_token_and_tier_counters(self):
        report = ServingReport(
            records=[],
            ticks=1.0,
            worker_busy_cycles=[1, 1],
            worker_target_steps=[1, 1],
            worker_prefill_tokens=[20, 22],
            worker_prefill_tokens_saved=[36, 14],
            worker_cache_demotions=[2, 0],
            worker_cache_promotions=[1, 0],
            worker_cache_cold_hits=[1, 3],
            worker_cache_cold_evictions=[0, 1],
        )
        assert report.prefill_tokens == 42
        assert report.prefill_tokens_saved == 50
        assert report.cache_demotions == 2
        assert report.cache_promotions == 1
        assert report.cache_cold_hits == 4
        assert report.cache_cold_evictions == 1
        summary = report.summary()
        assert summary["prefill_tokens"] == 42.0
        assert summary["prefill_tokens_saved"] == 50.0
