"""Tests for the Online DataBuffer (one-step-offset sampling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter.training import TrainingSequence
from repro.errors import DataBufferError
from repro.spot import OnlineDataBuffer


class TestErrorRename:
    def test_deprecated_alias_is_gone(self):
        """The PR-3 compatibility alias ``BufferError_`` has been
        retired; :class:`DataBufferError` is the only name."""
        import repro.errors

        assert not hasattr(repro.errors, "BufferError_")
        from repro.errors import ReproError

        assert issubclass(DataBufferError, ReproError)
        with pytest.raises(DataBufferError):
            OnlineDataBuffer(capacity_tokens=0)


def make_seq(length: int, step: int = 0) -> TrainingSequence:
    return TrainingSequence(
        tokens=np.arange(length) % 20,
        hidden_stacks=np.zeros((length, 2, 4)),
        step_index=step,
    )


class TestLifecycle:
    def test_add_and_count(self):
        buf = OnlineDataBuffer(capacity_tokens=1000)
        buf.begin_step(0)
        buf.add([make_seq(10), make_seq(20)])
        assert buf.num_sequences == 2
        assert buf.total_tokens == 30

    def test_steps_must_not_decrease(self):
        buf = OnlineDataBuffer()
        buf.begin_step(3)
        with pytest.raises(DataBufferError):
            buf.begin_step(2)

    def test_eviction_oldest_first(self):
        buf = OnlineDataBuffer(capacity_tokens=50)
        buf.begin_step(0)
        buf.add([make_seq(30)])
        buf.begin_step(1)
        buf.add([make_seq(30)])
        assert buf.stats().steps == [1]
        assert buf.total_tokens == 30

    def test_current_step_never_evicted(self):
        buf = OnlineDataBuffer(capacity_tokens=10)
        buf.begin_step(0)
        buf.add([make_seq(30)])  # oversized but current
        assert buf.num_sequences == 1

    def test_stats(self):
        buf = OnlineDataBuffer()
        buf.begin_step(2)
        buf.add([make_seq(5)])
        stats = buf.stats()
        assert stats.current_step == 2
        assert stats.num_sequences == 1


class TestOneStepOffsetSampling:
    def test_long_sequences_from_previous_step(self):
        buf = OnlineDataBuffer(long_fraction=0.5)
        buf.begin_step(0)
        buf.add([make_seq(100), make_seq(90), make_seq(10)])
        buf.begin_step(1)
        buf.add([make_seq(5), make_seq(6), make_seq(7), make_seq(8)])
        sample = buf.sample_sequences(4, np.random.default_rng(0))
        prev = [s for s in sample if s.step_index == 0]
        # Half the batch from the previous step, longest first.
        assert len(prev) == 2
        assert {s.length for s in prev} == {100, 90}

    def test_all_current_when_no_previous(self):
        buf = OnlineDataBuffer(long_fraction=0.5)
        buf.begin_step(0)
        buf.add([make_seq(5), make_seq(6), make_seq(7)])
        sample = buf.sample_sequences(3, np.random.default_rng(0))
        assert all(s.step_index == 0 for s in sample)

    def test_backfill_from_previous_when_current_small(self):
        buf = OnlineDataBuffer(long_fraction=0.25)
        buf.begin_step(0)
        buf.add([make_seq(50), make_seq(40), make_seq(30), make_seq(20)])
        buf.begin_step(1)
        buf.add([make_seq(5)])
        sample = buf.sample_sequences(4, np.random.default_rng(0))
        assert len(sample) == 4

    def test_empty_raises(self):
        buf = OnlineDataBuffer()
        with pytest.raises(DataBufferError):
            buf.sample_sequences(1, np.random.default_rng(0))

    def test_zero_long_fraction(self):
        buf = OnlineDataBuffer(long_fraction=0.0)
        buf.begin_step(0)
        buf.add([make_seq(100)])
        buf.begin_step(1)
        buf.add([make_seq(5), make_seq(6)])
        sample = buf.sample_sequences(2, np.random.default_rng(0))
        assert all(s.step_index == 1 for s in sample)

    def test_count_validation(self):
        buf = OnlineDataBuffer()
        buf.begin_step(0)
        buf.add([make_seq(5)])
        with pytest.raises(DataBufferError):
            buf.sample_sequences(0, np.random.default_rng(0))

    def test_validation(self):
        with pytest.raises(DataBufferError):
            OnlineDataBuffer(capacity_tokens=0)
        with pytest.raises(DataBufferError):
            OnlineDataBuffer(long_fraction=1.5)
