"""Tests for synthetic verifiable tasks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.llm.vocab import EOS_ID, NUM_SPECIAL_TOKENS, Vocabulary
from repro.workload import (
    AnswerTask,
    PatternCopyTask,
    SuccessorChainTask,
    make_prompt_batch,
)


@pytest.fixture()
def vocab():
    return Vocabulary(24)


class TestSuccessorChain:
    def test_perfect_chain_full_reward(self, vocab):
        task = SuccessorChainTask(vocab=vocab, target_pairs=4)
        lo = NUM_SPECIAL_TOKENS
        response = [lo, lo + 1, lo + 2, lo + 3, lo + 4, EOS_ID]
        assert task.reward([lo], response) == pytest.approx(1.0)

    def test_wraparound_successor(self, vocab):
        task = SuccessorChainTask(vocab=vocab)
        hi = vocab.size - 1
        lo = NUM_SPECIAL_TOKENS
        assert task.is_successor(hi, lo)

    def test_no_termination_loses_bonus(self, vocab):
        task = SuccessorChainTask(vocab=vocab, target_pairs=2)
        lo = NUM_SPECIAL_TOKENS
        with_eos = task.reward([lo], [lo, lo + 1, lo + 2, EOS_ID])
        without = task.reward([lo], [lo, lo + 1, lo + 2])
        assert with_eos > without

    def test_short_chain_partial_credit(self, vocab):
        task = SuccessorChainTask(vocab=vocab, target_pairs=10)
        lo = NUM_SPECIAL_TOKENS
        short = task.reward([lo], [lo, lo + 1, EOS_ID])
        long = task.reward(
            [lo], [lo + i for i in range(11)] + [EOS_ID]
        )
        assert long > short

    def test_wrong_tokens_no_chain_credit(self, vocab):
        task = SuccessorChainTask(vocab=vocab, terminal_bonus=0.0)
        lo = NUM_SPECIAL_TOKENS
        assert task.reward([lo], [lo, lo + 5, lo + 9]) == 0.0

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_reward_bounded(self, seed):
        vocab = Vocabulary(24)
        task = SuccessorChainTask(vocab=vocab)
        rng = np.random.default_rng(seed)
        prompt = task.generate_prompt(rng)
        response = rng.integers(0, 24, size=rng.integers(1, 30)).tolist()
        assert 0.0 <= task.reward(prompt, response) <= 1.0

    def test_prompt_tokens_regular(self, vocab):
        task = SuccessorChainTask(vocab=vocab)
        prompt = task.generate_prompt(np.random.default_rng(0))
        assert all(t >= NUM_SPECIAL_TOKENS for t in prompt)


class TestAnswerTask:
    def test_answer_found_rewarded(self, vocab):
        task = AnswerTask(vocab=vocab)
        prompt = [5, 7]
        answer = task.answer_token(prompt)
        assert task.reward(prompt, [answer, EOS_ID]) == pytest.approx(1.0)

    def test_answer_missing(self, vocab):
        task = AnswerTask(vocab=vocab)
        prompt = [5, 7]
        answer = task.answer_token(prompt)
        wrong = answer + 1 if answer + 1 < vocab.size else answer - 1
        assert task.reward(prompt, [wrong, EOS_ID]) == pytest.approx(
            task.format_credit
        )

    def test_answer_in_range(self, vocab):
        task = AnswerTask(vocab=vocab)
        rng = np.random.default_rng(0)
        for _ in range(50):
            prompt = task.generate_prompt(rng)
            answer = task.answer_token(prompt)
            assert NUM_SPECIAL_TOKENS <= answer < vocab.size

    def test_short_prompt_raises(self, vocab):
        task = AnswerTask(vocab=vocab)
        with pytest.raises(ConfigError):
            task.answer_token([5])


class TestPatternCopy:
    def test_exact_copy_full_reward(self, vocab):
        task = PatternCopyTask(vocab=vocab, prompt_length=3, repeats=2)
        prompt = [5, 6, 7]
        assert task.reward(prompt, prompt * 2 + [EOS_ID]) == 1.0

    def test_partial_copy(self, vocab):
        task = PatternCopyTask(vocab=vocab, prompt_length=2, repeats=1)
        assert task.reward([5, 6], [5, 9]) == pytest.approx(0.5)

    def test_rollout_similarity(self, vocab):
        """Optimal responses to the same prompt are identical — the
        regime motivating the model-free drafter."""
        task = PatternCopyTask(vocab=vocab, prompt_length=4, repeats=2)
        prompt = task.generate_prompt(np.random.default_rng(0))
        best = list(prompt) * 2
        assert task.reward(prompt, best) == 1.0


class TestPromptBatch:
    def test_expansion_group_major(self, vocab):
        task = SuccessorChainTask(vocab=vocab)
        batch = make_prompt_batch(
            task, num_prompts=3, group_size=4, rng=np.random.default_rng(0)
        )
        expanded = batch.expanded
        assert len(expanded) == 12
        assert expanded[0] == expanded[3]
        assert batch.num_sequences == 12

    def test_group_slices(self, vocab):
        task = SuccessorChainTask(vocab=vocab)
        batch = make_prompt_batch(
            task, num_prompts=2, group_size=3, rng=np.random.default_rng(0)
        )
        slices = batch.group_slices()
        assert slices[0] == slice(0, 3)
        assert slices[1] == slice(3, 6)

    def test_reward_batch_length_check(self, vocab):
        task = SuccessorChainTask(vocab=vocab)
        with pytest.raises(ConfigError):
            task.reward_batch([[1]], [[1], [2]])

    def test_validation(self, vocab):
        task = SuccessorChainTask(vocab=vocab)
        with pytest.raises(ConfigError):
            make_prompt_batch(task, 0, 1, np.random.default_rng(0))
