"""Shared fixtures: a small target model and a lightly trained drafter.

Session-scoped so the (modest) drafter training cost is paid once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    EagleDrafter,
    EagleDrafterConfig,
    TrainingStrategy,
)
from repro.drafter.training import (
    build_training_batch,
    collect_training_sequences,
)
from repro.llm import TinyLM, TinyLMConfig, generate


@pytest.fixture(scope="session")
def small_config() -> TinyLMConfig:
    return TinyLMConfig(
        vocab_size=24,
        hidden_size=16,
        context_window=4,
        num_layers=3,
        init_scale=1.5,
    )


@pytest.fixture(scope="session")
def target(small_config: TinyLMConfig) -> TinyLM:
    return TinyLM(small_config, np.random.default_rng(1234))


@pytest.fixture(scope="session")
def rollout_sequences(target: TinyLM):
    rng = np.random.default_rng(99)
    prompts = [list(rng.integers(3, 24, size=4)) for _ in range(24)]
    out = generate(
        target, prompts, max_new_tokens=48, temperature=0.9, rng=rng
    )
    return out.full_sequences


@pytest.fixture(scope="session")
def trained_drafter(target: TinyLM, rollout_sequences) -> EagleDrafter:
    """An EAGLE drafter trained enough to beat chance clearly."""
    rng = np.random.default_rng(5)
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    sequences = collect_training_sequences(target, rollout_sequences)
    batch = build_training_batch(sequences, unroll_steps=1)
    trainer = DrafterTrainer(
        drafter,
        DrafterTrainingConfig(
            strategy=TrainingStrategy.eagle(), learning_rate=5e-3
        ),
    )
    trainer.train_epochs(batch, epochs=120)
    return drafter


@pytest.fixture(scope="session")
def untrained_drafter(target: TinyLM) -> EagleDrafter:
    return EagleDrafter(
        target, EagleDrafterConfig(), np.random.default_rng(77)
    )
