"""Shared fixtures: a small target model, a lightly trained drafter,
and the seeded decode-scenario generator the determinism/invariant
suite is driven by.

Session-scoped so the (modest) drafter training cost is paid once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np
import pytest

from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    EagleDrafter,
    EagleDrafterConfig,
    TrainingStrategy,
)
from repro.drafter.base import Drafter
from repro.drafter.training import (
    build_training_batch,
    collect_training_sequences,
)
from repro.llm import TinyLM, TinyLMConfig, generate
from repro.serving.request import ServingRequest, SloClass, STANDARD
from repro.specdec.batch_engine import (
    BatchedSpecDecodeEngine,
    make_serving_request,
)
from repro.specdec.scheduler import SequenceRequest
from repro.specdec.strategy import SdStrategy


@pytest.fixture(scope="session")
def small_config() -> TinyLMConfig:
    return TinyLMConfig(
        vocab_size=24,
        hidden_size=16,
        context_window=4,
        num_layers=3,
        init_scale=1.5,
    )


@pytest.fixture(scope="session")
def target(small_config: TinyLMConfig) -> TinyLM:
    return TinyLM(small_config, np.random.default_rng(1234))


@pytest.fixture(scope="session")
def rollout_sequences(target: TinyLM):
    rng = np.random.default_rng(99)
    prompts = [list(rng.integers(3, 24, size=4)) for _ in range(24)]
    out = generate(
        target, prompts, max_new_tokens=48, temperature=0.9, rng=rng
    )
    return out.full_sequences


@pytest.fixture(scope="session")
def trained_drafter(target: TinyLM, rollout_sequences) -> EagleDrafter:
    """An EAGLE drafter trained enough to beat chance clearly."""
    rng = np.random.default_rng(5)
    drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
    sequences = collect_training_sequences(target, rollout_sequences)
    batch = build_training_batch(sequences, unroll_steps=1)
    trainer = DrafterTrainer(
        drafter,
        DrafterTrainingConfig(
            strategy=TrainingStrategy.eagle(), learning_rate=5e-3
        ),
    )
    trainer.train_epochs(batch, epochs=120)
    return drafter


@pytest.fixture(scope="session")
def untrained_drafter(target: TinyLM) -> EagleDrafter:
    return EagleDrafter(
        target, EagleDrafterConfig(), np.random.default_rng(77)
    )


# -- seeded decode scenarios (determinism/invariant suite) -----------------


@dataclass
class DecodeScenario:
    """One seeded decode workload every engine flavour must agree on.

    The determinism suite replays the SAME requests — same prompts,
    same per-request seeds, same caps — through different schedules
    (batch sizes, park/resume points, drafter swaps, dispatch and
    stealing choices) and asserts byte-identical committed tokens.
    Because the random streams are rebuilt from ``seeds`` on every
    :meth:`requests` call, each replay starts from an untouched stream;
    any engine grown later inherits the suite by accepting the same
    request objects.

    Attributes:
        target / drafter: the decode substrate.
        strategy: static SD configuration (static on purpose — elastic
            SD legitimately depends on the live batch, which is exactly
            what these tests must hold fixed).
        temperature: sampling temperature.
        prompts: per-request prompt token ids (no BOS).
        seeds: per-request private stream seeds.
        caps: per-request ``max_new_tokens``.
    """

    target: TinyLM
    drafter: Drafter
    strategy: SdStrategy
    temperature: float
    prompts: List[List[int]]
    seeds: List[int]
    caps: List[int]

    @property
    def num_requests(self) -> int:
        return len(self.prompts)

    def requests(self) -> List[SequenceRequest]:
        """Fresh engine requests (private streams rebuilt from seeds)."""
        return [
            make_serving_request(
                request_id=i,
                prompt=prompt,
                max_new_tokens=cap,
                seed=seed,
            )
            for i, (prompt, seed, cap) in enumerate(
                zip(self.prompts, self.seeds, self.caps)
            )
        ]

    def serving_requests(
        self,
        arrival_gap: float = 0.0,
        slos: Optional[Sequence[SloClass]] = None,
    ) -> List[ServingRequest]:
        """The same workload as front-end requests (same seeds)."""
        return [
            ServingRequest(
                request_id=i,
                prompt=list(prompt),
                max_new_tokens=cap,
                arrival_time=i * arrival_gap,
                slo=slos[i] if slos is not None else STANDARD,
                seed=seed,
            )
            for i, (prompt, seed, cap) in enumerate(
                zip(self.prompts, self.seeds, self.caps)
            )
        ]

    def engine(
        self,
        max_batch_size: Optional[int] = None,
        drafter: Optional[Drafter] = None,
    ) -> BatchedSpecDecodeEngine:
        """A fresh batched engine over this scenario's substrate."""
        return BatchedSpecDecodeEngine(
            self.target,
            drafter if drafter is not None else self.drafter,
            self.strategy,
            self.temperature,
            max_batch_size=max_batch_size,
        )

    def reference_responses(self) -> List[List[int]]:
        """Responses of an uninterrupted unbounded-batch run."""
        engine = self.engine()
        engine.start(self.requests())
        while engine.has_work:
            engine.step()
        return [list(s.response) for s in engine.result().slots]


@pytest.fixture(scope="session")
def scenario_factory(
    target: TinyLM, trained_drafter: EagleDrafter
) -> Callable[..., DecodeScenario]:
    """Build seeded decode scenarios over the session substrate.

    ``make(seed)`` fixes everything — prompts, seeds, caps — so two
    calls with the same arguments describe the identical workload.
    """

    def make(
        seed: int,
        num_requests: int = 3,
        max_new_tokens: int = 10,
        ragged_caps: bool = False,
        temperature: float = 0.9,
        draft_depth: int = 3,
        topk: int = 2,
        tokens_to_verify: int = 6,
    ) -> DecodeScenario:
        rng = np.random.default_rng(seed)
        vocab = target.config.vocab_size
        prompts = [
            list(map(int, rng.integers(3, vocab, size=4)))
            for _ in range(num_requests)
        ]
        seeds = [
            int(s)
            for s in rng.integers(
                0, np.iinfo(np.int64).max, size=num_requests
            )
        ]
        if ragged_caps:
            caps = [
                int(c)
                for c in rng.integers(
                    4, max_new_tokens + 1, size=num_requests
                )
            ]
        else:
            caps = [max_new_tokens] * num_requests
        return DecodeScenario(
            target=target,
            drafter=trained_drafter,
            strategy=SdStrategy(
                draft_depth=draft_depth,
                topk=topk,
                tokens_to_verify=tokens_to_verify,
            ),
            temperature=temperature,
            prompts=prompts,
            seeds=seeds,
            caps=caps,
        )

    return make
