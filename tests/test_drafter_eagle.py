"""Tests for the EAGLE drafter: architecture, gradients, training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.drafter import (
    DrafterTrainer,
    DrafterTrainingConfig,
    EagleDrafter,
    EagleDrafterConfig,
    TrainingStrategy,
    evaluate_topk_accuracy,
)
from repro.drafter.training import (
    TrainingSequence,
    build_training_batch,
    collect_training_sequences,
)
from repro.errors import DrafterError
from repro.llm import TinyLM, TinyLMConfig, softmax


class TestArchitecture:
    def test_single_decoder_layer_parameters(self, target):
        """The drafter carries exactly one decoder layer's weights.

        (At real-model scale one layer is ~1/num_layers of the target —
        verified against the hardware ModelSpec in the roofline tests; at
        toy scale the 4x FFN expansion makes raw counts incomparable, so
        the structural property is asserted instead.)
        """
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        assert set(drafter.params.names()) == {
            "w_r", "b_r", "w_up", "b_up", "w_down",
        }
        # No embedding / LM-head copies: those stay tied to the target.
        assert "embed" not in drafter.params

    def test_fused_layers_validation(self, target):
        with pytest.raises(DrafterError):
            EagleDrafter(
                target,
                EagleDrafterConfig(fused_layers=(99,)),
                np.random.default_rng(0),
            )

    def test_empty_fusion_rejected(self):
        with pytest.raises(DrafterError):
            EagleDrafterConfig(fused_layers=())

    def test_eagle3_has_fusion_projection(self, target):
        cfg = EagleDrafterConfig(fused_layers=(0, 1, -1))
        drafter = EagleDrafter(target, cfg, np.random.default_rng(0))
        assert "w_fuse" in drafter.params

    def test_single_layer_fusion_is_identity(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        stack = np.random.default_rng(1).normal(
            size=(target.num_layers, target.config.hidden_size)
        )
        assert np.allclose(drafter.fuse(stack), stack[-1])

    def test_head_is_tied_to_target(self, target):
        """RL updates to the target embedding flow to the drafter."""
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        hidden = np.ones(target.config.hidden_size)
        before = drafter.head_logits(hidden).copy()
        target.params["embed"] += 0.5
        after = drafter.head_logits(hidden)
        target.params["embed"] -= 0.5
        assert not np.allclose(before, after)

    def test_propose_is_distribution(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        state = drafter.begin([1, 5, 6], None)
        probs = drafter.propose(state, 0.9)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_begin_empty_prefix_raises(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        with pytest.raises(DrafterError):
            drafter.begin([], None)

    def test_extend_immutable(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        state = drafter.begin([1, 5, 6], None)
        hidden_before = state.hidden.copy()
        drafter.extend(state, 4)
        assert np.allclose(state.hidden, hidden_before)

    def test_clone_independent(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        twin = drafter.clone()
        twin.params["b_r"] += 1.0
        assert drafter.params.max_abs_diff(twin.params) > 0

    def test_state_dict_roundtrip(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        state = drafter.state_dict()
        drafter.params["w_r"] += 1.0
        drafter.load_state_dict(state)
        assert np.allclose(drafter.params["w_r"], state["w_r"])


class TestTrainingData:
    def test_collect_shapes(self, target, rollout_sequences):
        sequences = collect_training_sequences(target, rollout_sequences)
        for seq in sequences:
            assert seq.hidden_stacks.shape == (
                seq.length,
                target.num_layers,
                target.config.hidden_size,
            )

    def test_short_sequences_skipped(self, target):
        sequences = collect_training_sequences(target, [[1, 2]])
        assert sequences == []

    def test_batch_indexing_consistency(self, target, rollout_sequences):
        """tokens[:, j] must be followed by labels[:, j] in the source."""
        sequences = collect_training_sequences(
            target, rollout_sequences[:4]
        )
        batch = build_training_batch(sequences, unroll_steps=2)
        assert batch.tokens[:, 1].tolist() == batch.labels[:, 0].tolist()

    def test_unroll_too_deep_raises(self, target):
        seq = TrainingSequence(
            tokens=np.arange(4),
            hidden_stacks=np.zeros(
                (4, target.num_layers, target.config.hidden_size)
            ),
        )
        with pytest.raises(DrafterError):
            build_training_batch([seq], unroll_steps=10)

    def test_subsampling(self, target, rollout_sequences):
        sequences = collect_training_sequences(target, rollout_sequences)
        batch = build_training_batch(
            sequences, unroll_steps=1, max_positions=10,
            rng=np.random.default_rng(0),
        )
        assert batch.num_positions == 10

    def test_subsample_requires_rng(self, target, rollout_sequences):
        sequences = collect_training_sequences(target, rollout_sequences)
        with pytest.raises(DrafterError):
            build_training_batch(sequences, unroll_steps=1, max_positions=1)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DrafterError):
            TrainingSequence(
                tokens=np.arange(4), hidden_stacks=np.zeros((3, 2, 8))
            )


class TestTraining:
    def test_loss_decreases(self, target, rollout_sequences):
        rng = np.random.default_rng(0)
        drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
        sequences = collect_training_sequences(target, rollout_sequences)
        batch = build_training_batch(sequences, unroll_steps=1)
        trainer = DrafterTrainer(
            drafter, DrafterTrainingConfig(learning_rate=5e-3)
        )
        reports = trainer.train_epochs(batch, epochs=40)
        assert reports[-1].total_loss < reports[0].total_loss

    def test_accuracy_improves(self, target, rollout_sequences):
        rng = np.random.default_rng(0)
        drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
        sequences = collect_training_sequences(target, rollout_sequences)
        batch = build_training_batch(sequences, unroll_steps=1)
        before = evaluate_topk_accuracy(drafter, batch, k=3)
        trainer = DrafterTrainer(
            drafter, DrafterTrainingConfig(learning_rate=5e-3)
        )
        trainer.train_epochs(batch, epochs=60)
        after = evaluate_topk_accuracy(drafter, batch, k=3)
        assert after > before + 0.1

    def test_gradient_check_eagle_loss(self, target, rollout_sequences):
        """Finite-difference check of the full strategy loss gradient."""
        rng = np.random.default_rng(0)
        drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
        sequences = collect_training_sequences(
            target, rollout_sequences[:2]
        )
        batch = build_training_batch(
            sequences, unroll_steps=2, max_positions=5,
            rng=np.random.default_rng(1),
        )
        strategy = TrainingStrategy.hass()  # unroll=3 > batch depth 2
        strategy = TrainingStrategy(
            name="check", unroll_steps=2, l1_weight=0.7, ce_mode="soft"
        )

        def loss_value():
            steps = strategy.unroll_steps
            n = batch.num_positions
            embed = target.params["embed"]
            state = drafter.fuse(batch.fuse_stacks)
            total = 0.0
            for j in range(steps):
                hidden, _ = drafter.forward_cell_batch(
                    state, batch.tokens[:, j]
                )
                logits = hidden @ embed.T
                q = softmax(logits)
                top_j = batch.top_hiddens[:, j, :]
                p = softmax(top_j @ embed.T)
                logq = np.log(np.maximum(q, 1e-300))
                total += -float(np.mean(np.sum(p * logq, axis=-1)))
                total += strategy.l1_weight * float(
                    np.mean(np.abs(hidden - top_j))
                )
                state = hidden
            return total / steps

        # Recompute gradients exactly as the trainer does, without the
        # optimizer step.
        trainer = DrafterTrainer(
            drafter, DrafterTrainingConfig(strategy=strategy)
        )
        # Monkey-patch: capture gradients by zero-lr optimizer.
        trainer.optimizer.lr = 0.0

        # Manual recomputation of gradients via the trainer internals:
        from repro.llm.optim import Adam

        grads_capture = {}
        original_step = Adam.step

        def capture(self_opt, params, grads):
            grads_capture["grads"] = grads.copy()

        Adam.step = capture
        try:
            trainer.train_step(batch)
        finally:
            Adam.step = original_step
        grads = grads_capture["grads"]

        rng2 = np.random.default_rng(3)
        for name in grads.names():
            arr = drafter.params[name]
            for flat in rng2.integers(0, arr.size, size=2):
                idx = np.unravel_index(flat, arr.shape)
                eps = 1e-6
                orig = arr[idx]
                arr[idx] = orig + eps
                up = loss_value()
                arr[idx] = orig - eps
                down = loss_value()
                arr[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert grads[name][idx] == pytest.approx(
                    numeric, rel=2e-3, abs=1e-7
                ), name

    def test_strategy_mismatch_rejected(self, target):
        drafter = EagleDrafter(
            target, EagleDrafterConfig(), np.random.default_rng(0)
        )
        config = DrafterTrainingConfig(
            strategy=TrainingStrategy.eagle3(target.num_layers)
        )
        with pytest.raises(DrafterError):
            DrafterTrainer(drafter, config)

    def test_frozen_weights_untouched(self, target, rollout_sequences):
        rng = np.random.default_rng(0)
        drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
        embed_before = target.params["embed"].copy()
        sequences = collect_training_sequences(target, rollout_sequences)
        batch = build_training_batch(sequences, unroll_steps=1)
        trainer = DrafterTrainer(drafter, DrafterTrainingConfig())
        trainer.train_epochs(batch, epochs=5)
        assert np.allclose(target.params["embed"], embed_before)


class TestStrategies:
    def test_eagle_defaults(self):
        s = TrainingStrategy.eagle()
        assert s.unroll_steps == 1 and s.l1_weight > 0

    def test_hass_unrolls(self):
        s = TrainingStrategy.hass()
        assert s.unroll_steps == 3 and s.relative_cost == 3.0

    def test_eagle3_fuses_three_layers(self):
        s = TrainingStrategy.eagle3(8)
        assert s.fused_layers == (0, 4, 7)
        assert s.l1_weight == 0.0

    def test_osd_reverse_kd(self):
        assert TrainingStrategy.osd().ce_mode == "reverse_kd"

    def test_invalid_ce_mode(self):
        with pytest.raises(DrafterError):
            TrainingStrategy(name="bad", ce_mode="nope")

    def test_hass_training_works(self, target, rollout_sequences):
        rng = np.random.default_rng(0)
        drafter = EagleDrafter(target, EagleDrafterConfig(), rng)
        sequences = collect_training_sequences(target, rollout_sequences)
        batch = build_training_batch(sequences, unroll_steps=3)
        trainer = DrafterTrainer(
            drafter,
            DrafterTrainingConfig(strategy=TrainingStrategy.hass()),
        )
        reports = trainer.train_epochs(batch, epochs=20)
        assert reports[-1].ce_loss < reports[0].ce_loss

    def test_eagle3_training_works(self, target, rollout_sequences):
        rng = np.random.default_rng(0)
        strategy = TrainingStrategy.eagle3(target.num_layers)
        drafter = EagleDrafter(
            target,
            EagleDrafterConfig(fused_layers=strategy.fused_layers),
            rng,
        )
        sequences = collect_training_sequences(target, rollout_sequences)
        batch = build_training_batch(sequences, unroll_steps=7)
        trainer = DrafterTrainer(
            drafter, DrafterTrainingConfig(strategy=strategy)
        )
        reports = trainer.train_epochs(batch, epochs=10)
        assert reports[-1].ce_loss < reports[0].ce_loss
