"""Tests for softmax utilities and temperature sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import GenerationError
from repro.llm import (
    log_softmax,
    sample_from_logits,
    sample_from_probs,
    softmax,
    temperature_probs,
)
from repro.llm.sampler import entropy, greedy_token, renormalize, top_k_mask

finite_logits = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8)),
    elements=st.floats(-30, 30),
)


class TestSoftmax:
    @given(finite_logits)
    def test_sums_to_one(self, logits):
        assert softmax(logits).sum() == pytest.approx(1.0)

    @given(finite_logits)
    def test_shift_invariance(self, logits):
        assert np.allclose(softmax(logits), softmax(logits + 123.0))

    def test_extreme_values_stable(self):
        probs = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    @given(finite_logits)
    def test_log_softmax_consistent(self, logits):
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestTemperature:
    def test_zero_is_greedy_onehot(self):
        probs = temperature_probs(np.array([1.0, 3.0, 2.0]), 0.0)
        assert probs.tolist() == [0.0, 1.0, 0.0]

    def test_negative_raises(self):
        with pytest.raises(GenerationError):
            temperature_probs(np.zeros(3), -1.0)

    def test_low_temperature_sharpens(self):
        logits = np.array([1.0, 2.0])
        hot = temperature_probs(logits, 2.0)
        cold = temperature_probs(logits, 0.5)
        assert cold[1] > hot[1]

    def test_batched_shapes(self):
        logits = np.zeros((4, 5, 7))
        assert temperature_probs(logits, 1.0).shape == (4, 5, 7)


class TestSampling:
    def test_matches_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.2, 0.5, 0.3])
        draws = sample_from_probs(
            np.tile(probs, (20000, 1)), rng
        )
        freqs = np.bincount(draws, minlength=3) / 20000
        assert np.allclose(freqs, probs, atol=0.02)

    def test_degenerate_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.0, 1.0, 0.0])
        draws = sample_from_probs(np.tile(probs, (100, 1)), rng)
        assert (draws == 1).all()

    def test_sample_from_logits_greedy(self):
        rng = np.random.default_rng(0)
        token = sample_from_logits(np.array([0.0, 9.0, 1.0]), 0.0, rng)
        assert int(token) == 1

    def test_batch_shape_preserved(self):
        rng = np.random.default_rng(0)
        probs = np.full((3, 4, 5), 0.2)
        assert sample_from_probs(probs, rng).shape == (3, 4)


class TestTopKMask:
    def test_basic(self):
        mask = top_k_mask(np.array([0.1, 0.5, 0.4]), 2)
        assert mask.tolist() == [False, True, True]

    def test_k_larger_than_vocab(self):
        mask = top_k_mask(np.array([0.3, 0.7]), 10)
        assert mask.all()

    def test_invalid_k(self):
        with pytest.raises(GenerationError):
            top_k_mask(np.ones(3), 0)

    @given(finite_logits, st.integers(1, 8))
    def test_property_count(self, logits, k):
        probs = softmax(logits)
        mask = top_k_mask(probs, k)
        assert mask.sum() == min(k, probs.shape[-1])


class TestMisc:
    def test_entropy_uniform_is_log_v(self):
        probs = np.full(8, 1 / 8)
        assert entropy(probs) == pytest.approx(np.log(8))

    def test_entropy_onehot_is_zero(self):
        probs = np.zeros(5)
        probs[2] = 1.0
        assert entropy(probs) == pytest.approx(0.0)

    def test_renormalize(self):
        out = renormalize(np.array([1.0, 3.0]))
        assert np.allclose(out, [0.25, 0.75])

    def test_renormalize_zero_raises(self):
        with pytest.raises(GenerationError):
            renormalize(np.zeros(3))

    def test_greedy_token(self):
        assert int(greedy_token(np.array([0.0, 2.0, 1.0]))) == 1
