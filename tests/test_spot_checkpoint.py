"""Tests for selective asynchronous checkpointing."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.spot import CheckpointManager
from repro.spot.checkpoint import default_frozen_filter


@pytest.fixture()
def state():
    rng = np.random.default_rng(0)
    return {
        "w_r": rng.normal(size=(64, 128)),
        "b_r": rng.normal(size=64),
        "frozen_embed": rng.normal(size=(4096, 64)),
    }


class TestModes:
    def test_sync_roundtrip(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        result = manager.save(state, step=1, mode="sync")
        assert os.path.exists(result.path)
        loaded = manager.load(result.path)
        assert np.allclose(loaded["w_r"], state["w_r"])
        assert "frozen_embed" in loaded

    def test_async_completes_in_background(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        result = manager.save(state, step=1, mode="async")
        manager.wait_all()
        assert os.path.exists(result.path)
        loaded = manager.load(result.path)
        assert np.allclose(loaded["b_r"], state["b_r"])

    def test_selective_drops_frozen(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        result = manager.save(state, step=1, mode="selective_async")
        manager.wait_all()
        loaded = manager.load(result.path)
        assert "frozen_embed" not in loaded
        assert set(loaded) == {"w_r", "b_r"}

    def test_selective_smaller_payload(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        full = manager.save(state, step=1, mode="async")
        selective = manager.save(state, step=2, mode="selective_async")
        manager.wait_all()
        assert selective.bytes_written < full.bytes_written

    def test_async_foreground_faster_than_sync(self, tmp_path):
        """The paper's Figure 17(a) ordering on a large-ish payload."""
        rng = np.random.default_rng(0)
        big = {"w": rng.normal(size=(1200, 1200)),
               "frozen_embed": rng.normal(size=(2400, 1200))}
        manager = CheckpointManager(str(tmp_path))
        sync = manager.save(big, step=1, mode="sync")
        async_ = manager.save(big, step=2, mode="async")
        manager.wait_all()
        assert async_.foreground_s < sync.foreground_s

    def test_bad_mode(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(CheckpointError):
            manager.save(state, step=1, mode="turbo")

    def test_filter_everything_raises(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(CheckpointError):
            manager.save(
                state, step=1, mode="selective_async",
                trainable_filter=lambda name: False,
            )


class TestRetention:
    def test_keep_last(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_last=2)
        for step in range(5):
            manager.save(state, step=step, mode="sync")
        files = [f for f in os.listdir(tmp_path) if f.endswith(".npz")]
        assert len(files) == 2

    def test_latest(self, state, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(state, step=1, mode="sync")
        second = manager.save(state, step=2, mode="sync")
        assert manager.latest() == second.path

    def test_latest_none_when_empty(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        assert manager.latest() is None

    def test_load_missing_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(CheckpointError):
            manager.load(str(tmp_path / "nope.npz"))

    def test_validation(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(str(tmp_path), keep_last=0)


class TestFrozenFilter:
    def test_default_filter(self):
        assert default_frozen_filter("w_r")
        assert not default_frozen_filter("frozen_layer")
        assert not default_frozen_filter("tied_embed")
        assert not default_frozen_filter("lm_head")

    def test_snapshot_isolated_from_mutation(self, tmp_path):
        """Async saves snapshot state at call time (no torn writes)."""
        manager = CheckpointManager(str(tmp_path))
        state = {"w": np.zeros(8)}
        result = manager.save(state, step=1, mode="async")
        state["w"][:] = 99.0
        manager.wait_all()
        loaded = manager.load(result.path)
        assert np.allclose(loaded["w"], 0.0)
