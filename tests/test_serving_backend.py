"""Tests for the serving-pool rollout backend and the co-located loop.

The tentpole of the closed serving <-> RL integration:
:class:`~repro.rl.serving_backend.ServingRolloutBackend` round-trips
GRPO rollout groups through a shared :class:`~repro.serving.frontend.
ServingEngine` as BATCH-class traffic, and
:class:`~repro.rl.serving_backend.ColocatedLoop` /
:meth:`~repro.systems.tlt.TltSystem.colocated_system` close the loop
with spot drafter refresh published pool-wide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.drafter import DrafterTrainer, DrafterTrainingConfig
from repro.errors import ConfigError, ServingError
from repro.hardware import get_gpu, get_model
from repro.llm.vocab import BOS_ID, Vocabulary
from repro.rl import (
    ColocatedLoop,
    RlConfig,
    RlTrainer,
    ServingRolloutBackend,
    group_tags,
)
from repro.serving import (
    BATCH,
    INTERACTIVE,
    RequestState,
    RoundRobinDispatch,
    ServingEngine,
    SloPreemption,
)
from repro.spot import OnlineDataBuffer, SpotTrainer
from repro.systems import TltSystem
from repro.workload import SuccessorChainTask, mixed_serving_trace


def _frontend(scenario, num_workers=2, max_batch_size=2, **kwargs):
    return ServingEngine(
        scenario.target, scenario.drafter, num_workers=num_workers,
        strategy=scenario.strategy, temperature=scenario.temperature,
        max_batch_size=max_batch_size, **kwargs,
    )


class TestGroupTags:
    def test_grpo_expanded_runs(self):
        prompts = [[1, 2]] * 3 + [[3]] * 2 + [[1, 2]]
        # Consecutive identical prompts group; a repeat later is a NEW
        # group (GRPO expansion is group-major).
        assert group_tags(prompts) == [0, 0, 0, 1, 1, 2]

    def test_empty_and_singleton(self):
        assert group_tags([]) == []
        assert group_tags([[5]]) == [0]

    def test_explicit_group_size_beats_prompt_collisions(self):
        # Two adjacent groups that sampled the SAME prompt: adjacency
        # inference would merge them, the explicit shape does not.
        prompts = [[7, 7]] * 4
        assert group_tags(prompts) == [0, 0, 0, 0]
        assert group_tags(prompts, group_size=2) == [0, 0, 1, 1]
        with pytest.raises(ConfigError):
            group_tags(prompts, group_size=3)  # does not divide 4
        with pytest.raises(ConfigError):
            group_tags(prompts, group_size=0)


class TestServingRolloutBackend:
    def test_validates_slo_policy_and_temperature(
        self, scenario_factory
    ):
        from repro.serving.request import SloClass

        scenario = scenario_factory(40)
        frontend = _frontend(scenario)
        deadlined = SloClass("rollout", 8.0, 96.0, deadline=10.0)
        with pytest.raises(ConfigError):
            ServingRolloutBackend(frontend, slo=deadlined)
        with pytest.raises(ConfigError):
            ServingRolloutBackend(frontend, max_ticks=0)
        backend = ServingRolloutBackend(frontend)
        other_policy = scenario.target.clone()
        with pytest.raises(ConfigError):
            backend.generate(
                other_policy, [[5, 6]], 4, scenario.temperature,
                np.random.default_rng(0),
            )
        with pytest.raises(ConfigError):
            backend.generate(
                scenario.target, [[5, 6]], 4,
                scenario.temperature + 0.1, np.random.default_rng(0),
            )

    def test_rollouts_ride_the_pool_as_batch_class(
        self, scenario_factory
    ):
        scenario = scenario_factory(41)
        frontend = _frontend(scenario)
        backend = ServingRolloutBackend(frontend)
        prompts = [scenario.prompts[0]] * 2 + [scenario.prompts[1]] * 2
        result = backend.generate(
            scenario.target, prompts, 6, scenario.temperature,
            np.random.default_rng(1),
        )
        assert len(result.responses) == 4
        assert all(len(r) <= 6 for r in result.responses)
        # Prompts come back as decoded (BOS included), aligned with
        # the submission order.
        assert all(p[0] == BOS_ID for p in result.prompts)
        assert [p[1:] for p in result.prompts] == [
            list(p) for p in prompts
        ]
        records = list(frontend.records.values())
        assert all(r.request.slo is BATCH for r in records)
        assert all(r.state is RequestState.FINISHED for r in records)
        # Group tags: one per GRPO group, distinct between groups.
        groups = [r.request.group for r in records]
        assert groups[0] == groups[1] != groups[2] == groups[3]
        # finished flags mirror EOS-termination of each response.
        for flag, response in zip(result.finished, result.responses):
            assert flag == (
                bool(response) and response[-1] == 2  # EOS_ID
            )

    def test_successive_batches_get_fresh_ids_and_groups(
        self, scenario_factory
    ):
        scenario = scenario_factory(42)
        frontend = _frontend(scenario)
        backend = ServingRolloutBackend(frontend)
        rng = np.random.default_rng(2)
        backend.generate(
            scenario.target, [scenario.prompts[0]] * 2, 4,
            scenario.temperature, rng,
        )
        backend.generate(
            scenario.target, [scenario.prompts[0]] * 2, 4,
            scenario.temperature, rng,
        )
        ids = sorted(frontend.records)
        assert ids == [0, 1, 2, 3]  # no collisions across batches
        groups = [frontend.records[i].request.group for i in ids]
        assert groups[0] == groups[1] != groups[2] == groups[3]

    def test_interactive_traffic_served_during_rollouts(
        self, scenario_factory
    ):
        """The co-location contract: interactive arrivals preempt
        rollouts mid-generate and finish inside the rollout window."""
        scenario = scenario_factory(43)
        frontend = _frontend(
            scenario, preemption=SloPreemption(),
        )
        inter = scenario.serving_requests(
            arrival_gap=1.0,
            slos=[INTERACTIVE] * scenario.num_requests,
        )
        for request in inter:
            frontend.submit(request)
        backend = ServingRolloutBackend(frontend)
        prompts = [scenario.prompts[0]] * 4 + [scenario.prompts[1]] * 4
        result = backend.generate(
            scenario.target, prompts, 24, scenario.temperature,
            np.random.default_rng(3),
        )
        assert result.stats["preemptions"] > 0
        inter_records = [
            frontend.records[r.request_id] for r in inter
        ]
        assert all(
            r.state is RequestState.FINISHED for r in inter_records
        )
        # Per-class capacity accounting sees both classes.
        report = frontend.report()
        assert report.class_slot_cycles.get("batch", 0) > 0
        assert report.class_slot_cycles.get("interactive", 0) > 0
        utilization = report.class_utilization
        assert 0.0 < sum(utilization.values()) <= 1.0 + 1e-9
        per_class = report.per_class()
        assert per_class["batch"]["utilization"] > 0.0

    def test_cancelled_rollout_fails_loudly(self, scenario_factory):
        """A rollout killed mid-batch must not silently corrupt the
        GRPO group."""
        scenario = scenario_factory(44)
        frontend = _frontend(scenario, num_workers=1)
        backend = ServingRolloutBackend(frontend)

        # Cancel one rollout as soon as it is submitted, from inside
        # the pool's own event loop (subscriber fires on dispatch).
        cancelled = []

        def kill_first(event) -> None:
            if not cancelled and event.request_id is not None:
                cancelled.append(event.request_id)
                frontend.cancel(event.request_id)

        frontend.subscribe(kill_first)
        with pytest.raises(ServingError):
            backend.generate(
                scenario.target, [scenario.prompts[0]] * 2, 6,
                scenario.temperature, np.random.default_rng(4),
            )


class TestGroupAffinity:
    def test_groups_land_on_one_worker(self, scenario_factory):
        scenario = scenario_factory(45)
        frontend = _frontend(
            scenario, num_workers=2, max_batch_size=4,
            dispatch=RoundRobinDispatch(), group_affinity=True,
            work_stealing=False,
        )
        backend = ServingRolloutBackend(frontend)
        prompts = (
            [scenario.prompts[0]] * 3 + [scenario.prompts[1]] * 3
        )
        backend.generate(
            scenario.target, prompts, 4, scenario.temperature,
            np.random.default_rng(5),
        )
        workers_by_group = {}
        for record in frontend.records.values():
            workers_by_group.setdefault(
                record.request.group, set()
            ).add(record.worker_id)
        assert len(workers_by_group) == 2
        # Every member of a group decoded on the group's worker even
        # though round-robin would have striped them.
        assert all(
            len(workers) == 1
            for workers in workers_by_group.values()
        )
        # Affinity state is released once a group fully resolves, so a
        # long-lived pool does not accumulate one pin per group.
        assert frontend._group_worker == {}
        assert frontend._group_pending == {}

    def test_affinity_off_stripes_groups(self, scenario_factory):
        scenario = scenario_factory(45)
        frontend = _frontend(
            scenario, num_workers=2, max_batch_size=4,
            dispatch=RoundRobinDispatch(), group_affinity=False,
            work_stealing=False,
        )
        backend = ServingRolloutBackend(frontend)
        prompts = (
            [scenario.prompts[0]] * 3 + [scenario.prompts[1]] * 3
        )
        backend.generate(
            scenario.target, prompts, 4, scenario.temperature,
            np.random.default_rng(5),
        )
        workers = {
            r.worker_id for r in frontend.records.values()
        }
        assert workers == {0, 1}


class TestMixedServingTrace:
    def test_classes_arrivals_and_groups(self):
        trace = mixed_serving_trace(
            np.random.default_rng(0), vocab_size=24,
            num_interactive=6, num_batch=6, batch_group_size=3,
        )
        assert len(trace) == 12
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        by_class = {r.slo.name for r in trace}
        assert by_class == {"interactive", "batch"}
        batch = sorted(
            (r for r in trace if r.slo.name == "batch"),
            key=lambda r: r.request_id,
        )
        # Chunks of batch_group_size share group AND prompt.
        assert batch[0].group == batch[2].group != batch[3].group
        assert batch[0].prompt == batch[2].prompt
        assert all(r.group is None for r in trace
                   if r.slo.name == "interactive")

    def test_validation(self):
        with pytest.raises(ConfigError):
            mixed_serving_trace(
                np.random.default_rng(0), vocab_size=24,
                num_interactive=0, num_batch=2,
            )
        with pytest.raises(ConfigError):
            mixed_serving_trace(
                np.random.default_rng(0), vocab_size=24,
                num_interactive=2, num_batch=2, batch_group_size=0,
            )


class TestColocatedLoop:
    def _system(self):
        return TltSystem(
            get_model("Qwen2.5-7B"),
            ClusterSpec(
                num_workers=2, gpus_per_worker=4, gpu=get_gpu("H100")
            ),
        )

    def test_colocated_system_closes_the_loop(
        self, scenario_factory, target, trained_drafter
    ):
        scenario = scenario_factory(50)
        vocab = Vocabulary(target.config.vocab_size)
        task = SuccessorChainTask(vocab=vocab, target_pairs=4)
        drafter = trained_drafter.clone()
        spot = SpotTrainer(
            trainer=DrafterTrainer(
                drafter, DrafterTrainingConfig(learning_rate=5e-3)
            ),
            buffer=OnlineDataBuffer(capacity_tokens=50_000),
            checkpoints=None,
            batch_sequences=4,
            max_positions=64,
        )
        loop = self._system().colocated_system(
            target, drafter, task,
            RlConfig(
                num_prompts=2, group_size=2, max_new_tokens=8,
                temperature=0.9,
            ),
            num_workers=2, max_batch_size=2,
            strategy=scenario.strategy,
            spot_trainer=spot, spot_updates_per_round=2,
            rl_rng=np.random.default_rng(1),
            spot_rng=np.random.default_rng(2),
        )
        # Interactive traffic rides the same pool across rounds.
        inter = scenario.serving_requests(
            arrival_gap=2.0,
            slos=[INTERACTIVE] * scenario.num_requests,
        )
        for request in inter:
            loop.frontend.submit(request)
        reports = loop.run(2)
        assert len(reports) == 2
        assert loop.trainer.steps_done == 2
        # Each round published a refreshed drafter pool-wide.
        assert len(loop.published) == 2
        final = loop.drain()
        assert loop.frontend.drafter_swaps == 2
        for worker in loop.frontend.workers:
            assert worker.engine.drafter is loop.published[-1]
        assert all(r.finished for r in final.records)
        # Both traffic classes shared the pool's capacity.
        assert final.class_slot_cycles.get("batch", 0) > 0
        assert final.class_slot_cycles.get("interactive", 0) > 0
        metrics = loop.metrics()
        assert metrics["rounds"] == 2.0
        assert metrics["published_drafters"] == 2.0
        assert "utilization_batch" in metrics

    def test_loop_rejects_foreign_backend(self, scenario_factory,
                                          target):
        scenario = scenario_factory(51)
        frontend = _frontend(scenario)
        vocab = Vocabulary(target.config.vocab_size)
        task = SuccessorChainTask(vocab=vocab)
        trainer = RlTrainer(
            target, task,
            RlConfig(num_prompts=2, group_size=2, max_new_tokens=8,
                     temperature=0.9),
        )
        with pytest.raises(ConfigError):
            ColocatedLoop(frontend, trainer)

    def test_trainer_learns_through_the_pool(
        self, scenario_factory, target
    ):
        """End to end: GRPO improves reward with rollouts generated by
        the shared pool (smoke-level, two steps)."""
        scenario = scenario_factory(52)
        policy = target.clone()
        frontend = ServingEngine(
            policy, scenario.drafter, num_workers=2,
            strategy=scenario.strategy, temperature=0.9,
            max_batch_size=2, preemption=SloPreemption(),
        )
        vocab = Vocabulary(policy.config.vocab_size)
        task = SuccessorChainTask(vocab=vocab, target_pairs=4)
        trainer = RlTrainer(
            policy, task,
            RlConfig(num_prompts=3, group_size=2, max_new_tokens=8,
                     temperature=0.9, learning_rate=5e-3),
            backend=ServingRolloutBackend(frontend),
            rng=np.random.default_rng(0),
        )
        reports = trainer.run(2)
        assert all(np.isfinite(r.mean_reward) for r in reports)
        assert all(
            r.rollout_stats["pool_ticks"] > 0 for r in reports
        )
        # 3 prompts x 2 = 6 rollouts per step, all resolved per step.
        assert len(frontend.records) == 12
        assert all(
            r.state is RequestState.FINISHED
            for r in frontend.records.values()
        )
