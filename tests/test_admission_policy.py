"""Tests for pluggable admission + prefix-cache engine integration.

Three layers are pinned here:

* the :class:`~repro.specdec.control.AdmissionPolicy` surface —
  :class:`FifoAdmission` must reproduce the scheduler's original
  front-of-queue loop exactly, :class:`PrefixAwareAdmission` must
  co-admit shared-prefix requests without starving the urgent lane,
  and the scheduler must reject malformed policy output;
* the engine's prefix-cache integration — cold-cache, warm-cache and
  no-cache runs byte-identical; one prefill row per shared prompt;
  eviction under capacity pressure never corrupting a live slot; the
  park/resume ref lifecycle;
* the serving layer — prefix-affinity and preemption-aware dispatch
  routing, and the report's prefix-cache columns.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import pytest

from repro.cache import KVCacheManager
from repro.errors import CacheError, ConfigError, SpecDecodeError
from repro.serving import (
    INTERACTIVE,
    LeastLoadedDispatch,
    PreemptionAwareDispatch,
    PrefixAffinityDispatch,
    ServingEngine,
    ServingRequest,
)
from repro.specdec import (
    AdmissionPolicy,
    AdmissionView,
    BatchedSpecDecodeEngine,
    FifoAdmission,
    PrefixAwareAdmission,
    SdStrategy,
    make_serving_request,
)
from repro.specdec.scheduler import ContinuousBatchScheduler
from repro.workload import shared_prefix_trace


@pytest.fixture()
def strategy():
    return SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _requests(prompts, seed=42, max_new_tokens=24, start_id=0):
    rng = np.random.default_rng(seed)
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=len(prompts))
    return [
        make_serving_request(
            request_id=start_id + i,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            seed=int(seeds[i]),
        )
        for i, prompt in enumerate(prompts)
    ]


GROUPED_PROMPTS = (
    [[5, 6, 7]] * 3 + [[9, 10, 11]] * 3 + [[4, 8, 12]] * 2
)
DISTINCT_PROMPTS = [
    [5, 6, 7], [9, 10, 11], [4, 8, 12], [13, 14, 15],
    [6, 9, 13], [7, 11, 5], [12, 4, 9], [15, 13, 6],
]


class TestAdmissionPolicies:
    def test_fifo_matches_default_scheduler(self):
        requests = _requests(DISTINCT_PROMPTS)
        default = ContinuousBatchScheduler(requests, max_batch_size=3)
        explicit = ContinuousBatchScheduler(
            _requests(DISTINCT_PROMPTS), max_batch_size=3,
            admission=FifoAdmission(),
        )
        for scheduler in (default, explicit):
            assert isinstance(scheduler.admission, FifoAdmission)
        first = [s.request.request_id for s in default.admit()]
        second = [s.request.request_id for s in explicit.admit()]
        assert first == second == [0, 1, 2]
        assert [r.request_id for r in default.waiting] == list(
            range(3, 8)
        )

    def test_admission_respects_resume_reservation(self):
        scheduler = ContinuousBatchScheduler(
            _requests(DISTINCT_PROMPTS), max_batch_size=2,
            admission=FifoAdmission(),
        )
        scheduler.admit()
        scheduler.park(0)
        scheduler.resume(0)
        # One live + one resume in flight: no capacity for the FIFO.
        assert scheduler.admit() == []

    def test_invalid_policy_type_rejected(self):
        with pytest.raises(SpecDecodeError):
            ContinuousBatchScheduler(
                (), max_batch_size=2, admission="fifo",  # type: ignore
            )

    @pytest.mark.parametrize(
        "indices",
        [[0, 0], [99], [-1], [0, 1, 2, 3]],
        ids=["duplicate", "out-of-range", "negative", "over-capacity"],
    )
    def test_malformed_policy_output_raises(self, indices):
        class Broken(AdmissionPolicy):
            name = "broken"

            def select(self, view: AdmissionView) -> List[int]:
                return list(indices)

        scheduler = ContinuousBatchScheduler(
            _requests(DISTINCT_PROMPTS), max_batch_size=3,
            admission=Broken(),
        )
        with pytest.raises(SpecDecodeError):
            scheduler.admit()

    def test_prefix_aware_co_admits_group(self):
        # Queue: A, B, A, B, A (by prompt); capacity 3 must pull the
        # A-sharers forward: A A A in one wave, Bs left waiting.
        prompts = [[5, 6, 7], [9, 10, 11], [5, 6, 7], [9, 10, 11],
                   [5, 6, 7]]
        scheduler = ContinuousBatchScheduler(
            _requests(prompts), max_batch_size=3,
            admission=PrefixAwareAdmission(),
        )
        admitted = scheduler.admit()
        assert [s.request.request_id for s in admitted] == [0, 2, 4]
        assert [r.request_id for r in scheduler.waiting] == [1, 3]
        # Next wave co-admits the B group.
        for request_id in (0, 2, 4):
            scheduler.cancel(request_id)
        assert [
            s.request.request_id for s in scheduler.admit()
        ] == [1, 3]

    def test_prefix_aware_degrades_to_fifo(self):
        scheduler = ContinuousBatchScheduler(
            _requests(DISTINCT_PROMPTS), max_batch_size=3,
            admission=PrefixAwareAdmission(min_shared=3),
        )
        assert [
            s.request.request_id for s in scheduler.admit()
        ] == [0, 1, 2]

    def test_prefix_aware_urgent_lane_first(self):
        # Urgent request 3 (prompt unlike anything) must be admitted
        # before prefix pull-forward can spend the wave's capacity.
        prompts = [[5, 6, 7], [9, 10, 11], [5, 6, 7]]
        requests = _requests(prompts)
        scheduler = ContinuousBatchScheduler(
            requests, max_batch_size=2,
            admission=PrefixAwareAdmission(),
        )
        urgent = _requests([[20, 21, 22]], start_id=3)[0]
        scheduler.push(urgent, urgent=True)
        admitted = [s.request.request_id for s in scheduler.admit()]
        assert admitted[0] == 3
        assert admitted == [3, 0]

    def test_prefix_aware_matches_against_live_and_cache(self):
        cache = KVCacheManager(capacity_tokens=64)
        # The cache keys on the effective prefill context, p[:-1].
        cache.insert((1, 13, 14), np.zeros((2, 2)), cycle=0)
        requests = _requests(
            [[5, 6, 7], [9, 10, 11], [13, 14, 15]]
        )
        scheduler = ContinuousBatchScheduler(
            requests, max_batch_size=2,
            admission=PrefixAwareAdmission(), cache=cache,
        )
        # The FIFO head goes first (starvation guard); the remaining
        # slot goes to request 2, whose prompt ([BOS,13,14,15])
        # matches the cache and jumps over request 1.
        assert [
            s.request.request_id for s in scheduler.admit()
        ] == [0, 2]

    def test_prefix_aware_head_never_starved(self):
        # A unique-prompt head must be admitted even when later-queued
        # requests share a prefix with the live set.
        prompts = [[5, 6, 7], [5, 6, 7], [20, 21, 22], [5, 6, 7]]
        scheduler = ContinuousBatchScheduler(
            _requests(prompts), max_batch_size=2,
            admission=PrefixAwareAdmission(),
        )
        assert [
            s.request.request_id for s in scheduler.admit()
        ] == [0, 1]
        scheduler.cancel(0)
        scheduler.cancel(1)
        # Head is now the unique request 2; sharer 3 matches nothing
        # selected yet... except via live/cache — either way the head
        # must be in the wave.
        admitted = [s.request.request_id for s in scheduler.admit()]
        assert admitted[0] == 2
        assert admitted == [2, 3]

    def test_min_shared_validation(self):
        with pytest.raises(SpecDecodeError):
            PrefixAwareAdmission(min_shared=0)


class TestEnginePrefixCache:
    def _engine(self, target, drafter, strategy, **kwargs):
        return BatchedSpecDecodeEngine(
            target, drafter, strategy, temperature=0.9,
            max_batch_size=3, **kwargs,
        )

    def _run(self, engine, prompts=GROUPED_PROMPTS, seed=7):
        engine.start(_requests(prompts, seed=seed))
        while engine.has_work:
            engine.step()
        return engine.result()

    def test_cache_and_cold_runs_byte_identical(
        self, target, trained_drafter, strategy
    ):
        plain = self._run(
            self._engine(target, trained_drafter, strategy)
        )
        cached_engine = self._engine(
            target, trained_drafter, strategy,
            admission=PrefixAwareAdmission(),
            kv_cache=KVCacheManager(capacity_tokens=256),
        )
        cold = self._run(cached_engine)
        warm = self._run(cached_engine)  # second session, warm cache
        for other in (cold, warm):
            assert [s.response for s in other.slots] == [
                s.response for s in plain.slots
            ]

    def test_one_prefill_row_per_shared_prompt(
        self, target, trained_drafter, strategy
    ):
        plain_engine = self._engine(target, trained_drafter, strategy)
        plain = self._run(plain_engine)
        assert plain_engine.prefill_launches == len(GROUPED_PROMPTS)
        assert plain_engine.prefill_launches_saved == 0

        cached_engine = self._engine(
            target, trained_drafter, strategy,
            admission=PrefixAwareAdmission(),
            kv_cache=KVCacheManager(capacity_tokens=256),
        )
        self._run(cached_engine)
        # Three distinct prompts -> three computed rows, ever.
        assert cached_engine.prefill_launches == 3
        assert (
            cached_engine.prefill_launches_saved
            == len(GROUPED_PROMPTS) - 3
        )
        # Warm session: every prompt is already cached.
        self._run(cached_engine)
        assert cached_engine.prefill_launches == 0
        assert (
            cached_engine.prefill_launches_saved
            == len(GROUPED_PROMPTS)
        )
        assert plain == plain  # keep the reference alive for clarity

    def test_eviction_pressure_never_corrupts_outputs(
        self, target, trained_drafter, strategy
    ):
        plain = self._run(
            self._engine(target, trained_drafter, strategy),
            prompts=DISTINCT_PROMPTS,
        )
        # Capacity for a single 4-token prompt (BOS + 3): every
        # admission wave evicts the previous entries under pressure
        # while live slots keep pinning theirs.
        tiny = KVCacheManager(capacity_tokens=4)
        squeezed = self._run(
            self._engine(
                target, trained_drafter, strategy,
                admission=PrefixAwareAdmission(), kv_cache=tiny,
            ),
            prompts=DISTINCT_PROMPTS,
        )
        assert [s.response for s in squeezed.slots] == [
            s.response for s in plain.slots
        ]
        assert tiny.stats.evictions + tiny.stats.rejected > 0

    def test_park_resume_releases_and_reacquires_ref(
        self, target, trained_drafter, strategy
    ):
        cache = KVCacheManager(capacity_tokens=64)
        engine = self._engine(
            target, trained_drafter, strategy, kv_cache=cache,
        )
        prompts = [[5, 6, 7], [5, 6, 7]]
        # seed=1 keeps both requests live across the park/resume walk
        # (neither hits EOS before the refcounts are asserted).
        engine.start(_requests(prompts, seed=1, max_new_tokens=64))
        engine.step()
        key = (1, 5, 6)  # effective context of BOS + prompt
        assert cache.refcount(key) == 2
        engine.park(0)
        assert cache.refcount(key) == 1
        engine.resume(0)
        assert cache.refcount(key) == 1  # re-acquired at readmission
        engine.step()
        assert cache.refcount(key) == 2
        while engine.has_work:
            engine.step()
        assert cache.refcount(key) == 0  # retirement released both
        assert cache.contains(key)       # ...but the entry survives

    def test_park_survives_eviction_of_its_entry(
        self, target, trained_drafter, strategy
    ):
        plain = self._run(
            self._engine(target, trained_drafter, strategy),
            prompts=DISTINCT_PROMPTS[:4],
        )
        cache = KVCacheManager(capacity_tokens=4)
        engine = self._engine(
            target, trained_drafter, strategy, kv_cache=cache,
        )
        engine.start(
            _requests(DISTINCT_PROMPTS[:4], seed=7, max_new_tokens=24)
        )
        engine.step()
        engine.park(0)  # unpins (1,5,6,7); later waves may evict it
        while engine.has_work:
            engine.step()
        engine.resume(0)
        while engine.has_work:
            engine.step()
        result = engine.result()
        assert [s.response for s in result.slots] == [
            s.response for s in plain.slots
        ]

    def test_cancel_releases_ref(
        self, target, trained_drafter, strategy
    ):
        cache = KVCacheManager(capacity_tokens=64)
        engine = self._engine(
            target, trained_drafter, strategy, kv_cache=cache,
        )
        engine.start(_requests([[5, 6, 7]], max_new_tokens=64))
        engine.step()
        assert cache.refcount((1, 5, 6)) == 1
        engine.cancel(0)
        assert cache.refcount((1, 5, 6)) == 0


class _StubWorker:
    """Duck-typed worker for dispatch-policy unit tests."""

    def __init__(self, worker_id, free_slots, backlog, victim=None):
        self.worker_id = worker_id
        self.free_slots = free_slots
        self.backlog_tokens = backlog
        self._victim = victim
        self.matches = {}

    def victim_cost(self, victim_classes=None):
        return self._victim

    def park_cost(self, policy, arrival):
        return self._victim

    def prefix_match(self, prompt):
        return self.matches.get(tuple(prompt), 0)


def _arrival(request_id=0, prompt=(5, 6, 7), slo=INTERACTIVE):
    return ServingRequest(
        request_id=request_id,
        prompt=list(prompt),
        max_new_tokens=8,
        arrival_time=0.0,
        slo=slo,
    )


class TestDispatchPolicies:
    def test_preemption_aware_routes_to_cheapest_victim(self):
        workers = [
            _StubWorker(0, free_slots=0, backlog=10, victim=30),
            _StubWorker(1, free_slots=0, backlog=50, victim=4),
            _StubWorker(2, free_slots=0, backlog=5, victim=None),
        ]
        policy = PreemptionAwareDispatch()
        assert policy.choose(_arrival(), workers) == 1

    def test_preemption_aware_derives_from_policy(self):
        from repro.serving import SloPreemption

        workers = [
            _StubWorker(0, free_slots=0, backlog=10, victim=30),
            _StubWorker(1, free_slots=0, backlog=50, victim=4),
        ]
        slo_policy = SloPreemption(urgent_ttft=10.0)
        dispatch = PreemptionAwareDispatch(policy=slo_policy)
        # Urgency comes from the policy (ttft 4 <= 10), costs from
        # park_cost — the victim the policy would actually park.
        assert dispatch.choose(_arrival(), workers) == 1
        # A policy that marks nothing urgent forces the fallback even
        # though the default urgent_ttft proxy would have fired.
        strict = SloPreemption(urgent_ttft=0.5)
        dispatch = PreemptionAwareDispatch(policy=strict)
        assert dispatch.choose(_arrival(), workers) == 0

    def test_preemption_aware_falls_back_with_free_slots(self):
        workers = [
            _StubWorker(0, free_slots=0, backlog=10, victim=2),
            _StubWorker(1, free_slots=1, backlog=50, victim=4),
        ]
        policy = PreemptionAwareDispatch()
        # Free slot somewhere -> fallback (least-loaded -> worker 0).
        assert policy.choose(_arrival(), workers) == 0

    def test_preemption_aware_ignores_non_urgent(self):
        from repro.serving import BATCH

        workers = [
            _StubWorker(0, free_slots=0, backlog=50, victim=1),
            _StubWorker(1, free_slots=0, backlog=10, victim=99),
        ]
        policy = PreemptionAwareDispatch()
        assert policy.choose(_arrival(slo=BATCH), workers) == 1

    def test_preemption_aware_all_idle_victimless(self):
        workers = [
            _StubWorker(0, free_slots=0, backlog=50, victim=None),
            _StubWorker(1, free_slots=0, backlog=10, victim=None),
        ]
        assert PreemptionAwareDispatch().choose(_arrival(), workers) == 1

    def test_victim_cost_respects_classes(
        self, target, trained_drafter, strategy
    ):
        # A real worker pool: one BATCH rollout and one INTERACTIVE
        # request live on worker 0; the class-blind cost sees both,
        # the class-restricted cost only the BATCH slot, and a worker
        # with no eligible victim reports None.
        from repro.serving import BATCH

        pool = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=strategy,
            temperature=0.9, max_batch_size=2,
        )
        batch_request = _arrival(0, prompt=(5, 6, 7), slo=BATCH)
        batch_request.max_new_tokens = 64
        inter_request = _arrival(1, prompt=(9, 10, 11))
        inter_request.max_new_tokens = 8
        pool.submit(batch_request)
        pool.submit(inter_request)
        pool.tick()
        worker = pool.workers[0]
        assert worker.victim_cost(frozenset({"batch"})) is not None
        blind = worker.cheapest_victim_tokens
        assert blind is not None
        assert blind <= worker.victim_cost(frozenset({"batch"}))
        assert worker.victim_cost(frozenset({"standard"})) is None
        # Without a resolver, class-restricted costs are unknowable.
        worker.resolve = None
        assert worker.victim_cost(frozenset({"batch"})) is None
        assert worker.cheapest_victim_tokens is not None

    def test_park_cost_matches_actual_preemption_choice(
        self, target, trained_drafter, strategy
    ):
        # SloPreemption parks the LARGEST-backlog BATCH victim;
        # park_cost must report that victim's remaining tokens (not
        # the cheapest slot on the worker), so routing and parking
        # agree on what a park costs.
        from repro.serving import BATCH, SloPreemption

        pool = ServingEngine(
            target, trained_drafter, num_workers=1, strategy=strategy,
            temperature=0.9, max_batch_size=2,
        )
        short = _arrival(0, prompt=(5, 6, 7), slo=BATCH)
        short.max_new_tokens = 8
        long = _arrival(1, prompt=(9, 10, 11), slo=BATCH)
        long.max_new_tokens = 64
        pool.submit(short)
        pool.submit(long)
        pool.tick()
        worker = pool.workers[0]
        policy = SloPreemption()
        urgent = _arrival(2, prompt=(4, 8, 12))
        cost = worker.park_cost(policy, urgent)
        live = {
            request.request_id: remaining
            for request, remaining in worker._live_pairs()
        }
        assert cost == live[1]          # the long victim gets parked
        assert cost > live[0]           # ...not the cheap slot
        worker.resolve = None
        assert worker.park_cost(policy, urgent) is None

    def test_prefix_affinity_routes_to_best_match(self):
        workers = [
            _StubWorker(0, free_slots=1, backlog=0),
            _StubWorker(1, free_slots=1, backlog=99),
        ]
        workers[1].matches[(5, 6, 7)] = 4
        policy = PrefixAffinityDispatch()
        # Worker 1 holds the prefix: affinity beats load.
        assert policy.choose(_arrival(), workers) == 1

    def test_prefix_affinity_falls_back_below_min_match(self):
        workers = [
            _StubWorker(0, free_slots=1, backlog=9),
            _StubWorker(1, free_slots=1, backlog=1),
        ]
        workers[0].matches[(5, 6, 7)] = 1  # BOS-only coincidence
        policy = PrefixAffinityDispatch(min_match=2)
        assert policy.choose(_arrival(), workers) == 1

    def test_prefix_affinity_tie_breaks_by_backlog(self):
        workers = [
            _StubWorker(0, free_slots=1, backlog=9),
            _StubWorker(1, free_slots=1, backlog=1),
        ]
        workers[0].matches[(5, 6, 7)] = 3
        workers[1].matches[(5, 6, 7)] = 3
        assert PrefixAffinityDispatch().choose(_arrival(), workers) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            PrefixAffinityDispatch(min_match=0)
        with pytest.raises(ConfigError):
            PreemptionAwareDispatch(urgent_ttft=0.0)
        with pytest.raises(ConfigError):
            PrefixAffinityDispatch().choose(_arrival(), [])


class TestServingIntegration:
    def _pool(self, target, drafter, strategy, **kwargs):
        return ServingEngine(
            target, drafter, num_workers=2, strategy=strategy,
            temperature=0.9, max_batch_size=2, **kwargs,
        )

    def test_prefix_affinity_co_locates_repeat_prompts(
        self, target, trained_drafter, strategy
    ):
        pool = self._pool(
            target, trained_drafter, strategy,
            dispatch=PrefixAffinityDispatch(),
            kv_cache_tokens=256,
            work_stealing=False,
        )
        trace = [
            _arrival(0, prompt=(5, 6, 7)),
            _arrival(1, prompt=(9, 10, 11)),
            _arrival(2, prompt=(5, 6, 7)),
        ]
        trace[1].arrival_time = 0.5
        trace[2].arrival_time = 1.0
        report = pool.run(trace)
        workers = {r.request.request_id: r.worker_id
                   for r in report.records}
        assert workers[0] == workers[2]
        assert workers[1] != workers[0]
        assert report.prefix_hit_rate > 0.0
        assert report.prefill_launches_saved >= 1

    def test_serving_outputs_invariant_under_prefix_stack(
        self, target, trained_drafter, strategy
    ):
        trace = shared_prefix_trace(
            np.random.default_rng(3), 24, num_requests=8,
            num_prefixes=2, prefix_len=3, suffix_len=0,
        )
        base = self._pool(target, trained_drafter, strategy).run(
            list(trace)
        )
        pref = self._pool(
            target, trained_drafter, strategy,
            dispatch=PrefixAffinityDispatch(),
            admission=PrefixAwareAdmission(),
            kv_cache_tokens=256,
        ).run(list(trace))
        assert [r.response for r in pref.records] == [
            r.response for r in base.records
        ]
        assert pref.prefill_launches < base.prefill_launches
        assert base.prefill_launches_saved == 0
        summary = pref.summary()
        assert summary["prefill_launches_saved"] > 0
        assert 0.0 < summary["prefix_hit_rate"] <= 1.0
        assert len(pref.worker_prefix_hit_rates()) == 2

    def test_kv_cache_tokens_validation(
        self, target, trained_drafter, strategy
    ):
        with pytest.raises(ConfigError):
            self._pool(
                target, trained_drafter, strategy, kv_cache_tokens=0
            )


class TestSharedPrefixTrace:
    def test_prompts_share_exact_prefixes(self):
        trace = shared_prefix_trace(
            np.random.default_rng(0), 32, num_requests=12,
            num_prefixes=3, prefix_len=4, suffix_len=2,
        )
        assert len(trace) == 12
        heads = {tuple(r.prompt[:4]) for r in trace}
        assert len(heads) <= 3
        assert all(len(r.prompt) == 6 for r in trace)
        assert trace == sorted(trace, key=lambda r: r.arrival_time)

    def test_zero_suffix_repeats_whole_prompts(self):
        trace = shared_prefix_trace(
            np.random.default_rng(0), 32, num_requests=10,
            num_prefixes=2, prefix_len=3,
        )
        assert len({tuple(r.prompt) for r in trace}) <= 2

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            shared_prefix_trace(rng, 32, 0, 1)
        with pytest.raises(ConfigError):
            shared_prefix_trace(rng, 32, 1, 0)
        with pytest.raises(ConfigError):
            shared_prefix_trace(rng, 32, 1, 1, prefix_len=0)
        with pytest.raises(ConfigError):
            shared_prefix_trace(rng, 32, 1, 1, suffix_len=-1)
        with pytest.raises(ConfigError):
            shared_prefix_trace(rng, 32, 1, 1, mean_interarrival=0.0)
