"""Tests for the fleet tier (repro.fleet): lifecycle, routing,
drain/migration, fleet-wide hot swap, id allocation, determinism."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigError, FleetError, ServingError
from repro.fleet import (
    FleetEngine,
    FleetLeastLoaded,
    FleetRoundRobin,
    PrefixHashRouting,
    ReplicaLifecycle,
    ReplicaState,
    StaticRouting,
)
from repro.hardware import get_gpu, get_model
from repro.serving import (
    RequestIdAllocator,
    ServingEngine,
    ServingRequest,
)
from repro.specdec import SdStrategy
from repro.systems import TltSystem
from repro.workload import fleet_trace

STRATEGY = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)


def _pool(target, drafter, workers=2, max_batch=2, **kwargs):
    return ServingEngine(
        target, drafter, num_workers=workers, strategy=STRATEGY,
        temperature=0.9, max_batch_size=max_batch, **kwargs,
    )


def _trace(num_tenants=3, per_tenant=4, num_batch=4, seed=7):
    return fleet_trace(
        np.random.default_rng(seed),
        24,
        num_tenants=num_tenants,
        requests_per_tenant=per_tenant,
        num_batch=num_batch,
        prefix_len=4,
        mean_interarrival=1.0,
    )


def _responses(report):
    pooled = report.pooled() if hasattr(report, "pooled") else report
    return {
        r.request.request_id: r.response for r in pooled.records
    }


class TestLifecycle:
    def test_happy_path(self):
        lifecycle = ReplicaLifecycle(0.0)
        assert lifecycle.state is ReplicaState.JOINING
        lifecycle.to(ReplicaState.ACTIVE, 1.0)
        lifecycle.to(ReplicaState.DRAINING, 5.0)
        lifecycle.to(ReplicaState.RETIRED, 9.0)
        assert [s for s, _ in lifecycle.history] == [
            ReplicaState.JOINING,
            ReplicaState.ACTIVE,
            ReplicaState.DRAINING,
            ReplicaState.RETIRED,
        ]

    def test_joining_may_retire_directly(self):
        lifecycle = ReplicaLifecycle()
        lifecycle.to(ReplicaState.RETIRED, 0.0)

    @pytest.mark.parametrize(
        "path",
        [
            (ReplicaState.DRAINING,),  # JOINING cannot drain
            (ReplicaState.ACTIVE, ReplicaState.RETIRED),  # must drain
            (
                ReplicaState.ACTIVE,
                ReplicaState.DRAINING,
                ReplicaState.ACTIVE,  # no resurrection
            ),
        ],
    )
    def test_illegal_transitions(self, path):
        lifecycle = ReplicaLifecycle()
        with pytest.raises(FleetError):
            for state in path:
                lifecycle.to(state, 0.0)


class TestRequestIdAllocator:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RequestIdAllocator(start=-1)
        with pytest.raises(ServingError):
            RequestIdAllocator().allocate(0)

    def test_allocate_and_observe(self):
        allocator = RequestIdAllocator()
        assert list(allocator.allocate(3)) == [0, 1, 2]
        allocator.observe(10)
        assert list(allocator.allocate(2)) == [11, 12]
        allocator.observe(4)  # behind the cursor: no-op
        assert allocator.next_id == 13

    def test_concurrent_replicas_never_collide(self):
        """Replicas minting ids concurrently from the shared namespace
        can never collide — the fleet-safety satellite."""
        allocator = RequestIdAllocator()
        minted = []
        errors = []
        barrier = threading.Barrier(8)

        def replica():
            try:
                barrier.wait()
                local = []
                for _ in range(200):
                    local.extend(allocator.allocate(3))
                minted.append(local)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=replica) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        flat = [i for local in minted for i in local]
        assert len(flat) == 8 * 200 * 3
        assert len(set(flat)) == len(flat)  # fleet-unique

    def test_fleet_shares_one_namespace(self, target, trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(3)]
        )
        ids = set()
        for replica in fleet.replicas:
            ids.update(replica.frontend.allocate_request_ids(4))
        ids.update(fleet.allocate_request_ids(4))
        assert len(ids) == 16  # disjoint across replicas and fleet


class TestFleetConstruction:
    def test_needs_replicas(self):
        with pytest.raises(ConfigError):
            FleetEngine([])

    def test_rejects_ticked_pool(self, target, trained_drafter):
        stale = _pool(target, trained_drafter)
        stale.tick()
        with pytest.raises(FleetError):
            FleetEngine([stale])

    def test_duplicate_submission_rejected(self, target,
                                           trained_drafter):
        fleet = FleetEngine([_pool(target, trained_drafter)])
        request = ServingRequest(
            request_id=0, prompt=[5, 6, 7], max_new_tokens=4,
            arrival_time=0.0,
        )
        fleet.submit(request)
        with pytest.raises(FleetError):
            fleet.submit(request)


class TestRoutingPolicies:
    def test_round_robin_cycles(self, target, trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(3)],
            routing=FleetRoundRobin(),
        )
        report = fleet.run(_trace(num_batch=0), max_ticks=5000)
        assert max(report.routed) - min(report.routed) <= 1

    def test_prefix_hash_concentrates_tenants(self, target,
                                              trained_drafter):
        """Each tenant's repeated prefix lands on exactly one replica
        (no spill at this load)."""
        trace = _trace(num_tenants=4, per_tenant=5, num_batch=0)
        routing = PrefixHashRouting(spill_factor=None)
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(3)],
            routing=routing,
        )
        fleet.run(trace, max_ticks=5000)
        owners = {}
        for request in trace:
            key = tuple(request.prompt[:4])
            owners.setdefault(key, set()).add(
                fleet.placement[request.request_id]
            )
        assert all(len(v) == 1 for v in owners.values())
        assert routing.spills == 0

    def test_spill_sheds_hot_spots(self, target, trained_drafter):
        """One hot tenant over a tight spill threshold sheds arrivals
        to the least-loaded replica."""
        routing = PrefixHashRouting(
            spill_factor=1.0, spill_margin=0
        )
        fleet = FleetEngine(
            [_pool(target, trained_drafter, workers=1, max_batch=1)
             for _ in range(2)],
            routing=routing,
        )
        trace = fleet_trace(
            np.random.default_rng(3), 24, num_tenants=1,
            requests_per_tenant=10, num_batch=0,
            mean_interarrival=0.2,
        )
        report = fleet.run(trace, max_ticks=5000)
        assert routing.spills > 0
        assert report.spills == routing.spills
        assert min(report.routed) > 0  # both replicas saw work

    def test_static_routing_rejects_unknown(self, target,
                                            trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter)],
            routing=StaticRouting({}),
        )
        request = ServingRequest(
            request_id=0, prompt=[5, 6, 7], max_new_tokens=4,
            arrival_time=0.0,
        )
        fleet.submit(request)
        with pytest.raises(FleetError):
            fleet.run(max_ticks=100)


class TestDeterminismContract:
    def test_fleet_matches_single_pool(self, target, trained_drafter):
        """Under any routing, fleet outputs are byte-identical to the
        same trace through one reference pool."""
        trace = _trace()
        reference = _responses(_pool(target, trained_drafter).run(trace))
        for routing in (FleetRoundRobin(), PrefixHashRouting()):
            fleet = FleetEngine(
                [_pool(target, trained_drafter) for _ in range(3)],
                routing=routing,
            )
            report = fleet.run(trace, max_ticks=5000)
            assert _responses(report) == reference, routing.name

    def test_snapshot_replay_pins_placement(self, target,
                                            trained_drafter):
        trace = _trace()
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(3)],
            routing=PrefixHashRouting(),
        )
        report = fleet.run(trace, max_ticks=5000)
        snapshot = fleet.snapshot_routing()
        replay = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(3)],
            routing=snapshot,
        )
        replay_report = replay.run(trace, max_ticks=5000)
        assert replay.placement == fleet.placement
        assert _responses(replay_report) == _responses(report)


class TestDrain:
    def test_drain_migrates_and_retires_with_zero_drops(
        self, target, trained_drafter
    ):
        """Draining a loaded replica mid-trace migrates its queued
        work, finishes its live work in place, retires it, and resolves
        every request exactly once, byte-identically."""
        # Dense arrivals into tiny replicas: the drained one is sure
        # to hold queued (not yet running) work at drain time.
        trace = fleet_trace(
            np.random.default_rng(11), 24, num_tenants=4,
            requests_per_tenant=5, num_batch=6,
            mean_interarrival=0.1, batch_gap=0.3,
        )
        reference = _responses(_pool(target, trained_drafter).run(trace))
        state = {"migrated": None}

        def on_tick(fleet):
            if state["migrated"] is None and fleet.clock.now >= 3:
                state["migrated"] = fleet.drain(1)

        fleet = FleetEngine(
            # Tiny replicas so the drained one holds queued work.
            [_pool(target, trained_drafter, workers=1, max_batch=1)
             for _ in range(3)],
            routing=FleetRoundRobin(),
        )
        report = fleet.run(trace, on_tick=on_tick, max_ticks=10000)
        assert state["migrated"] is not None and state["migrated"] > 0
        assert report.migrations == state["migrated"]
        assert report.drains == 1
        assert report.replica_states[1] == "retired"
        responses = _responses(report)
        assert len(responses) == len(trace)  # zero dropped
        assert report.num_requests == len(trace)  # zero duplicated
        assert responses == reference  # byte-identical

    def test_drain_idle_replica_retires_immediately(self, target,
                                                    trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(2)]
        )
        fleet.tick()  # promote JOINING -> ACTIVE
        assert fleet.drain(1) == 0
        assert fleet.replicas[1].state is ReplicaState.RETIRED

    def test_double_drain_rejected(self, target, trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(2)]
        )
        fleet.tick()
        fleet.drain(1)
        with pytest.raises(FleetError):
            fleet.drain(1)

    def test_arrival_with_no_active_replica_raises(self, target,
                                                   trained_drafter):
        fleet = FleetEngine([_pool(target, trained_drafter)])
        fleet.tick()
        fleet.drain(0)
        request = ServingRequest(
            request_id=0, prompt=[5, 6, 7], max_new_tokens=4,
            arrival_time=0.0,
        )
        fleet.submit(request)
        with pytest.raises(FleetError):
            fleet.tick()


class TestJoin:
    def test_late_joiner_activates_and_serves(self, target,
                                              trained_drafter):
        """A replica added mid-run joins the ring after warm-up and
        starts taking arrivals; outputs stay byte-identical."""
        trace = _trace(num_tenants=4, per_tenant=5, num_batch=0)
        reference = _responses(_pool(target, trained_drafter).run(trace))
        state = {"joined": None}

        def on_tick(fleet):
            if state["joined"] is None and fleet.clock.now >= 3:
                state["joined"] = fleet.add_replica(
                    _pool(target, trained_drafter)
                )

        routing = PrefixHashRouting()
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(2)],
            routing=routing,
            warmup_ticks=2,
        )
        report = fleet.run(trace, on_tick=on_tick, max_ticks=5000)
        joined = state["joined"]
        assert joined == 2
        replica = fleet.replicas[joined]
        assert replica.state is ReplicaState.ACTIVE
        # Promotion waited out the warm-up window.
        activated = dict(
            (s, t) for s, t in replica.lifecycle.history
        )[ReplicaState.ACTIVE]
        assert activated >= replica.joined_at + 2
        assert _responses(report) == reference
        # Membership change moved only an arc: audited, bounded.
        assert routing.ring_moves < len(trace)


class TestFleetHotSwap:
    def test_rolling_swap_is_zero_downtime(self, target,
                                           trained_drafter):
        """A fleet-wide publish mid-trace rolls replica by replica,
        worker by worker, with byte-identical outputs (equal weights)
        and no dropped requests."""
        trace = _trace()
        reference = _responses(_pool(target, trained_drafter).run(trace))
        state = {"swapped": False}
        fresh = trained_drafter.clone()

        def on_tick(fleet):
            if not state["swapped"] and fleet.clock.now >= 3:
                fleet.swap_drafter(fresh)
                state["swapped"] = True

        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(3)],
            routing=PrefixHashRouting(),
        )
        report = fleet.run(trace, on_tick=on_tick, max_ticks=5000)
        assert state["swapped"]
        assert not fleet.swap_in_progress
        assert report.drafter_rolls == 1
        for replica in fleet.replicas:
            assert replica.frontend.drafter_swaps == 1
            for worker in replica.frontend.workers:
                assert worker.engine.drafter is fresh
        assert _responses(report) == reference

    def test_at_most_one_replica_mid_swap(self, target,
                                          trained_drafter):
        """The fleet roll is serial: a later replica's pool roll only
        starts after the previous replica's roll completed."""
        fleet = FleetEngine(
            [_pool(target, trained_drafter, workers=3)
             for _ in range(3)],
        )
        fleet.tick()
        fleet.swap_drafter(trained_drafter.clone())
        while fleet.swap_in_progress:
            in_flight = sum(
                1 for r in fleet.replicas
                if r.frontend.swap_in_progress
            )
            assert in_flight <= 1
            fleet.tick()
        assert all(
            r.frontend.drafter_swaps == 1 for r in fleet.replicas
        )

    def test_swap_completes_over_idle_fleet(self, target,
                                            trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(2)]
        )
        fleet.swap_drafter(trained_drafter.clone())
        report = fleet.run((), max_ticks=100)
        assert not fleet.swap_in_progress
        assert report.drafter_rolls == 1

    def test_rejects_non_drafter(self, target, trained_drafter):
        fleet = FleetEngine([_pool(target, trained_drafter)])
        with pytest.raises(FleetError):
            fleet.swap_drafter(object())


class TestSystemIntegration:
    def _system(self):
        return TltSystem(
            get_model("Qwen2.5-7B"),
            ClusterSpec(
                num_workers=2, gpus_per_worker=4, gpu=get_gpu("H100")
            ),
        )

    def test_fleet_frontend_builds_and_serves(self, target,
                                              trained_drafter):
        fleet = self._system().fleet_frontend(
            target, trained_drafter, num_replicas=3, num_workers=2,
            strategy=STRATEGY, max_batch_size=2, temperature=0.9,
        )
        assert len(fleet.replicas) == 3
        allocators = {
            id(r.frontend.id_allocator) for r in fleet.replicas
        }
        assert allocators == {id(fleet.id_allocator)}
        report = fleet.run(_trace(), max_ticks=5000)
        assert report.num_requests == len(_trace())
        assert report.policy == "prefix-hash"

    def test_publish_drafter_rolls_the_fleet(self, target,
                                             trained_drafter):
        """TltSystem.publish_drafter accepts a fleet wherever it
        accepted a pool (the adaptive-drafter loop at fleet scale)."""

        class _Spot:
            def snapshot_drafter(self):
                return trained_drafter.clone()

        system = self._system()
        fleet = system.fleet_frontend(
            target, trained_drafter, num_replicas=2, num_workers=2,
            strategy=STRATEGY, max_batch_size=2, temperature=0.9,
        )
        published = system.publish_drafter(fleet, _Spot())
        assert fleet.swap_in_progress
        fleet.run((), max_ticks=100)
        for replica in fleet.replicas:
            for worker in replica.frontend.workers:
                assert worker.engine.drafter is published


class TestMergedEventStream:
    """FleetEngine.subscribe: one fleet-wide stream, replica-tagged."""

    def test_events_carry_replica_ids(self, target, trained_drafter):
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(2)]
        )
        live = []
        fleet.subscribe(live.append)
        fleet.run(_trace(), max_ticks=5000)
        trail = fleet.lifecycle_events()
        assert trail and trail == live
        replica_ids = {r.replica_id for r in fleet.replicas}
        assert all(e.replica_id in replica_ids for e in trail)
        assert len({e.replica_id for e in trail}) == 2

    def test_merged_stream_matches_per_replica_trails(
        self, target, trained_drafter
    ):
        """Filtering the fleet stream by replica reproduces each
        pool's own lifecycle trail (stamps untouched, only the
        replica_id added)."""
        fleet = FleetEngine(
            [_pool(target, trained_drafter) for _ in range(2)]
        )
        fleet.run(_trace(), max_ticks=5000)

        def strip(event):
            return (
                event.kind, event.request_id, event.cycle,
                event.time, event.worker_id,
            )

        for replica in fleet.replicas:
            merged = [
                strip(e)
                for e in fleet.lifecycle_events()
                if e.replica_id == replica.replica_id
            ]
            own = [
                strip(e)
                for e in replica.frontend.lifecycle_events()
            ]
            assert merged == own

    def test_late_joiner_forwards_onto_same_stream(
        self, target, trained_drafter
    ):
        """One subscription covers replicas added after it was made."""
        fleet = FleetEngine([_pool(target, trained_drafter)])
        seen = []
        fleet.subscribe(seen.append)
        joined = {"done": False}

        def control(engine):
            if not joined["done"] and engine.clock.now >= 3.0:
                joined["done"] = True
                engine.add_replica(_pool(target, trained_drafter))

        fleet.run(
            _trace(num_tenants=4, per_tenant=5),
            max_ticks=5000,
            on_tick=control,
        )
        new_id = fleet.replicas[-1].replica_id
        assert any(e.replica_id == new_id for e in seen)


class TestWarmSpill:
    """Hot-spot spill lands on the second-warmest replica for the
    request's prefix, not the globally least-loaded one."""

    def _routing_with_owner(self, prompt, members=(0, 1, 2)):
        routing = PrefixHashRouting(
            prefix_len=4, spill_factor=1.0, spill_margin=0
        )
        for replica_id in members:
            routing.on_join(replica_id)
        from repro.fleet.ring import prefix_key

        owner = routing.ring.owner(prefix_key(prompt, 4))
        return routing, owner

    def _stub(self, replica_id, backlog, warmth=None):
        stub = type("Stub", (), {})()
        stub.replica_id = replica_id
        stub.backlog_tokens = backlog
        if warmth is not None:
            stub.prefix_match = lambda prompt, w=warmth: w
        return stub

    def test_choose_prefers_warmth_over_load(self):
        prompt = [5, 6, 7, 8]
        routing, owner = self._routing_with_owner(prompt)
        others = [i for i in (0, 1, 2) if i != owner]
        # Owner overloaded; of the two cooler replicas the WARMER one
        # (despite more load) should win under warm_spill.
        stubs = {owner: self._stub(owner, backlog=100, warmth=4)}
        stubs[others[0]] = self._stub(others[0], backlog=10, warmth=0)
        stubs[others[1]] = self._stub(others[1], backlog=50, warmth=3)
        replicas = [stubs[i] for i in sorted(stubs)]
        request = ServingRequest(
            request_id=0, prompt=prompt, max_new_tokens=4,
            arrival_time=0.0,
        )
        index = routing.choose(request, replicas)
        assert replicas[index].replica_id == others[1]
        assert routing.spills == 1

    def test_choose_without_warm_spill_is_least_loaded(self):
        prompt = [5, 6, 7, 8]
        routing = PrefixHashRouting(
            prefix_len=4, spill_factor=1.0, spill_margin=0,
            warm_spill=False,
        )
        for replica_id in (0, 1, 2):
            routing.on_join(replica_id)
        from repro.fleet.ring import prefix_key

        owner = routing.ring.owner(prefix_key(prompt, 4))
        others = [i for i in (0, 1, 2) if i != owner]
        stubs = {owner: self._stub(owner, backlog=100, warmth=4)}
        stubs[others[0]] = self._stub(others[0], backlog=10, warmth=0)
        stubs[others[1]] = self._stub(others[1], backlog=50, warmth=3)
        replicas = [stubs[i] for i in sorted(stubs)]
        request = ServingRequest(
            request_id=0, prompt=prompt, max_new_tokens=4,
            arrival_time=0.0,
        )
        index = routing.choose(request, replicas)
        assert replicas[index].replica_id == others[0]

    def test_no_spill_when_no_replica_is_cooler(self):
        """Spilling must shed load: when every other replica is at
        least as hot as the owner, the arrival stays home."""
        prompt = [5, 6, 7, 8]
        routing, owner = self._routing_with_owner(prompt)
        replicas = [
            self._stub(i, backlog=100, warmth=2) for i in (0, 1, 2)
        ]
        request = ServingRequest(
            request_id=0, prompt=prompt, max_new_tokens=4,
            arrival_time=0.0,
        )
        index = routing.choose(request, replicas)
        assert replicas[index].replica_id == owner
        assert routing.spills == 0

    def test_replicas_without_probe_count_as_cold(self):
        prompt = [5, 6, 7, 8]
        routing, owner = self._routing_with_owner(prompt)
        others = [i for i in (0, 1, 2) if i != owner]
        stubs = {owner: self._stub(owner, backlog=100)}
        stubs[others[0]] = self._stub(others[0], backlog=50)
        stubs[others[1]] = self._stub(others[1], backlog=10, warmth=2)
        replicas = [stubs[i] for i in sorted(stubs)]
        request = ServingRequest(
            request_id=0, prompt=prompt, max_new_tokens=4,
            arrival_time=0.0,
        )
        index = routing.choose(request, replicas)
        assert replicas[index].replica_id == others[1]

    def _hot_spot_run(self, target, trained_drafter, warm_spill):
        routing = PrefixHashRouting(
            spill_factor=1.0, spill_margin=0, warm_spill=warm_spill
        )
        fleet = FleetEngine(
            [
                _pool(
                    target, trained_drafter, workers=1, max_batch=2,
                    kv_cache_tokens=4096,
                )
                for _ in range(4)
            ],
            routing=routing,
        )
        trace = fleet_trace(
            np.random.default_rng(7), 24, num_tenants=1,
            requests_per_tenant=20, num_batch=0,
            mean_interarrival=0.25,
        )
        report = fleet.run(trace, max_ticks=5000)
        return routing, report

    def test_warm_spill_pays_fewer_cold_prefills(
        self, target, trained_drafter
    ):
        """Under a hot-spot spill the warm-spill router concentrates
        one family's overflow on one overflow replica (which pays its
        cold prefill once); the load-only router scatters it and pays
        the prefill on every cool replica it touches."""
        warm_routing, warm = self._hot_spot_run(
            target, trained_drafter, warm_spill=True
        )
        cold_routing, cold = self._hot_spot_run(
            target, trained_drafter, warm_spill=False
        )
        assert warm_routing.spills > 0
        assert cold_routing.spills > 0
        assert warm.prefill_launches < cold.prefill_launches
        # Same family, same outputs: spill placement moves latency and
        # cache locality, never committed tokens.
        assert _responses(warm) == _responses(cold)
