"""EventBus/RequestEvent contract tests (the control-plane trail).

The lifecycle event stream is the observability surface the preemption
benchmarks and the closed-loop RL <-> serving work read; these tests pin
its guarantees:

* emission order is deterministic and what subscribers observe;
* per request, cycle stamps and virtual-time stamps never go backwards;
* every admitted request's trail is well-formed: one ADMITTED first,
  park/resume events strictly alternating, and EXACTLY one terminal
  event (FINISHED / CANCELLED / EXPIRED) — under cancellation, expiry,
  and preemption alike;
* requests terminated before reaching a worker still get their one
  terminal event (on the front-end's own bus).
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.serving import (
    BATCH,
    INTERACTIVE,
    ServingEngine,
    SloPreemption,
)
from repro.serving.request import SloClass
from repro.specdec.control import (
    EventBus,
    RequestEvent,
    RequestEventKind,
)

TERMINAL = {
    RequestEventKind.FINISHED,
    RequestEventKind.CANCELLED,
    RequestEventKind.EXPIRED,
}
PARKING = {RequestEventKind.PARKED, RequestEventKind.PREEMPTED}


# -- EventBus unit behaviour -----------------------------------------------


class TestEventBus:
    def test_subscribers_see_emission_order(self):
        bus = EventBus(worker_id=4)
        seen = []
        bus.subscribe(seen.append)
        first = bus.emit(RequestEventKind.ADMITTED, 1, cycle=0)
        second = bus.emit(RequestEventKind.FINISHED, 1, cycle=3, time=2.0)
        assert seen == [first, second]
        assert bus.events == seen
        assert len(bus) == 2
        # Worker id is stamped on every event by the owning bus.
        assert {e.worker_id for e in seen} == {4}

    def test_of_kind_filters_in_order(self):
        bus = EventBus()
        bus.emit(RequestEventKind.ADMITTED, 1, cycle=0)
        bus.emit(RequestEventKind.ADMITTED, 2, cycle=0)
        bus.emit(RequestEventKind.FINISHED, 1, cycle=2)
        admitted = bus.of_kind(RequestEventKind.ADMITTED)
        assert [e.request_id for e in admitted] == [1, 2]
        assert bus.of_kind(RequestEventKind.EXPIRED) == []

    def test_clear_keeps_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(RequestEventKind.ADMITTED, 1, cycle=0)
        bus.clear()
        assert len(bus) == 0
        bus.emit(RequestEventKind.FINISHED, 1, cycle=1)
        assert len(seen) == 2  # still subscribed across clear()

    def test_events_property_is_a_snapshot(self):
        bus = EventBus()
        bus.emit(RequestEventKind.ADMITTED, 1, cycle=0)
        snapshot = bus.events
        bus.emit(RequestEventKind.FINISHED, 1, cycle=1)
        assert len(snapshot) == 1  # later emits don't mutate it

    def test_event_is_immutable(self):
        event = RequestEvent(RequestEventKind.ADMITTED, 1, cycle=0)
        with pytest.raises(AttributeError):
            event.cycle = 5  # type: ignore[misc]


# -- pool-wide trail invariants --------------------------------------------


def _mixed_run(scenario_factory):
    """A run exercising every lifecycle edge: finish, preemption +
    resume, live cancel, pending cancel, expiry, and a drafter swap."""
    scenario = scenario_factory(31, num_requests=6)
    slos = [
        BATCH, BATCH,
        INTERACTIVE,
        SloClass("deadline", 4.0, 6.0, deadline=3.0),
        BATCH, BATCH,
    ]
    requests = scenario.serving_requests(arrival_gap=1.0, slos=slos)
    requests[3].max_new_tokens = 50  # can't finish inside its deadline
    requests[5].arrival_time = 40.0  # cancelled while still pending
    frontend = ServingEngine(
        scenario.target, scenario.drafter, num_workers=2,
        strategy=scenario.strategy, temperature=scenario.temperature,
        max_batch_size=1, preemption=SloPreemption(),
    )
    for request in requests:
        frontend.submit(request)
    for _ in range(4):
        frontend.tick()
    frontend.cancel(4)  # queued-or-live cancel
    frontend.cancel(5)  # pending cancel (never dispatched)
    frontend.swap_drafter(scenario.drafter.clone())
    report = frontend.run(())
    return frontend, report


class TestPoolTrail:
    def test_every_request_gets_exactly_one_terminal_event(
        self, scenario_factory
    ):
        frontend, report = _mixed_run(scenario_factory)
        terminal = defaultdict(list)
        for event in frontend.lifecycle_events():
            if event.kind in TERMINAL:
                terminal[event.request_id].append(event.kind)
        assert set(terminal) == set(range(6))
        assert all(len(kinds) == 1 for kinds in terminal.values())
        # The trail agrees with the records on HOW each one ended.
        by_kind = {
            RequestEventKind.FINISHED: [
                r.request.request_id for r in report.records
                if r.finished
            ],
            RequestEventKind.EXPIRED: [
                r.request.request_id for r in report.records
                if r.expired
            ],
        }
        for kind, ids in by_kind.items():
            assert sorted(
                i for i, k in terminal.items() if k[0] is kind
            ) == sorted(ids)
        # The scenario really covered all three terminal kinds.
        kinds_seen = {k for kinds in terminal.values() for k in kinds}
        assert kinds_seen == TERMINAL

    def test_cycle_and_time_monotonic_per_request(
        self, scenario_factory
    ):
        frontend, _ = _mixed_run(scenario_factory)
        per_request = defaultdict(list)
        for event in frontend.lifecycle_events():
            if event.request_id is not None:
                per_request[event.request_id].append(event)
        assert per_request
        for events in per_request.values():
            # Events of one request on one worker: cycles never go
            # backwards; virtual-time stamps never go backwards.
            by_worker = defaultdict(list)
            for event in events:
                by_worker[event.worker_id].append(event)
            for worker_events in by_worker.values():
                cycles = [e.cycle for e in worker_events]
                assert cycles == sorted(cycles)
            times = [e.time for e in events if e.time is not None]
            assert times == sorted(times)

    def test_trail_is_well_formed_per_request(self, scenario_factory):
        """ADMITTED precedes everything on-worker; park/resume strictly
        alternate; nothing follows the terminal event."""
        frontend, _ = _mixed_run(scenario_factory)
        per_request = defaultdict(list)
        for event in frontend.lifecycle_events():
            if event.request_id is not None:
                per_request[event.request_id].append(event)
        preempted = 0
        for request_id, events in per_request.items():
            kinds = [e.kind for e in events]
            assert kinds[-1] in TERMINAL
            assert not any(k in TERMINAL for k in kinds[:-1])
            if kinds[0] is not RequestEventKind.ADMITTED:
                # Never reached a worker: terminated while pending.
                assert kinds == [kinds[-1]]
                continue
            depth = 0
            for kind in kinds:
                if kind in PARKING:
                    assert depth == 0  # no double park
                    depth += 1
                    preempted += 1
                elif kind is RequestEventKind.RESUMED:
                    assert depth == 1  # no resume without a park
                    depth -= 1
        assert preempted > 0  # the scenario exercised preemption

    def test_swap_events_are_engine_wide(self, scenario_factory):
        frontend, _ = _mixed_run(scenario_factory)
        swaps = [
            e for e in frontend.lifecycle_events()
            if e.kind is RequestEventKind.SWAPPED
        ]
        # One rolling swap across two workers = two SWAPPED events on
        # distinct workers and ticks, none tied to a request.
        assert len(swaps) == 2
        assert all(e.request_id is None for e in swaps)
        assert {e.worker_id for e in swaps} == {0, 1}
        assert swaps[0].time < swaps[1].time

    def test_deterministic_trail_across_reruns(self, scenario_factory):
        first, _ = _mixed_run(scenario_factory)
        second, _ = _mixed_run(scenario_factory)
        assert first.lifecycle_events() == second.lifecycle_events()

    def test_subscription_covers_frontend_and_workers(
        self, scenario_factory
    ):
        scenario = scenario_factory(33, num_requests=2)
        frontend = ServingEngine(
            scenario.target, scenario.drafter, num_workers=1,
            strategy=scenario.strategy,
            temperature=scenario.temperature, max_batch_size=2,
        )
        seen = []
        frontend.subscribe(seen.append)
        requests = scenario.serving_requests(arrival_gap=0.0)
        requests[1].arrival_time = 30.0
        for request in requests:
            frontend.submit(request)
        frontend.cancel(1)  # pending: terminal lands on the frontend bus
        frontend.run(())
        assert seen == frontend.lifecycle_events()
        kinds = {(e.kind, e.request_id) for e in seen}
        assert (RequestEventKind.CANCELLED, 1) in kinds
        assert (RequestEventKind.FINISHED, 0) in kinds
