"""Tests for long-tail length models and trace synthesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workload import (
    EmpiricalLengths,
    LognormalLengths,
    ParetoLengths,
    PromptFamily,
    length_statistics,
    segment_families,
    segmented_grpo_trace,
    synthesize_trace,
)
from repro.workload.lengths import tail_fraction


class TestLognormal:
    def test_bounds(self):
        model = LognormalLengths(median=1000, sigma=1.0, cap=5000)
        lengths = model.sample(np.random.default_rng(0), 2000)
        assert lengths.min() >= 1
        assert lengths.max() <= 5000

    def test_median_roughly_respected(self):
        model = LognormalLengths(median=1000, sigma=1.0, cap=100_000)
        lengths = model.sample(np.random.default_rng(0), 5000)
        assert 800 < np.median(lengths) < 1250

    def test_long_tail_shape(self):
        """Most requests short, a few near the cap — the Figure 1a shape."""
        model = LognormalLengths(median=2500, sigma=1.1, cap=30_000)
        lengths = model.sample(np.random.default_rng(0), 5000)
        assert np.median(lengths) < 0.15 * lengths.max()
        assert (lengths >= 0.8 * 30_000).sum() >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [dict(median=0), dict(sigma=0), dict(cap=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            LognormalLengths(**kwargs)

    def test_negative_count(self):
        model = LognormalLengths()
        with pytest.raises(ConfigError):
            model.sample(np.random.default_rng(0), -1)


class TestPareto:
    def test_bounds(self):
        model = ParetoLengths(minimum=100, alpha=1.5, cap=10_000)
        lengths = model.sample(np.random.default_rng(0), 2000)
        assert lengths.min() >= 100
        assert lengths.max() <= 10_000

    def test_heavier_tail_than_lognormal(self):
        rng = np.random.default_rng(0)
        pareto = ParetoLengths(minimum=500, alpha=1.2, cap=10**7)
        sample = pareto.sample(rng, 5000)
        # Pareto(1.2): p99/p50 is large.
        assert np.percentile(sample, 99) / np.percentile(sample, 50) > 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParetoLengths(minimum=0)


class TestEmpirical:
    def test_resamples_observed(self):
        model = EmpiricalLengths([5, 10, 20], cap=100)
        sample = model.sample(np.random.default_rng(0), 100)
        assert set(np.unique(sample)).issubset({5, 10, 20})

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            EmpiricalLengths([], cap=10)

    def test_cap_applied(self):
        model = EmpiricalLengths([5, 500], cap=100)
        sample = model.sample(np.random.default_rng(0), 50)
        assert sample.max() <= 100

    def test_single_observation_is_degenerate(self):
        """One observed length resamples to exactly that length —
        the edge a trace replay hits on a one-request trace."""
        model = EmpiricalLengths([7], cap=100)
        sample = model.sample(np.random.default_rng(0), 64)
        assert sample.shape == (64,)
        assert set(np.unique(sample)) == {7}
        assert model.max_length == 100

    def test_single_observation_clipped_by_cap(self):
        model = EmpiricalLengths([500], cap=100)
        sample = model.sample(np.random.default_rng(0), 16)
        assert set(np.unique(sample)) == {100}

    def test_zero_length_observation_raises(self):
        with pytest.raises(ConfigError):
            EmpiricalLengths([5, 0], cap=10)

    def test_zero_count_sample(self):
        model = EmpiricalLengths([5], cap=10)
        assert model.sample(np.random.default_rng(0), 0).size == 0


class TestStatistics:
    def test_keys(self):
        stats = length_statistics([1, 2, 3, 100])
        assert stats["max"] == 100
        assert stats["q3_max_gap"] == pytest.approx(100 - stats["p75"])

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            length_statistics([])

    def test_tail_fraction(self):
        assert tail_fraction([1, 1, 1, 10], 0.5) == pytest.approx(0.25)

    def test_tail_fraction_validation(self):
        with pytest.raises(ConfigError):
            tail_fraction([1], 0.0)
        with pytest.raises(ConfigError):
            tail_fraction([1], 1.5)

    def test_tail_fraction_empty_raises(self):
        with pytest.raises(ConfigError):
            tail_fraction([])

    def test_constant_lengths(self):
        """Constant input: no spread, no gap.  Every request clears a
        fractional threshold (all are "the max"), and the strict `>`
        means none clears threshold_ratio=1.0 — the tail indicator's
        two degenerate readings."""
        stats = length_statistics([8, 8, 8, 8])
        assert stats["max"] == stats["p50"] == stats["mean"] == 8.0
        assert stats["q3_max_gap"] == 0.0
        assert tail_fraction([8, 8, 8, 8], 0.5) == 1.0
        assert tail_fraction([8, 8, 8, 8], 1.0) == 0.0

    def test_single_length(self):
        stats = length_statistics([42])
        assert stats["max"] == 42.0
        assert stats["q3_max_gap"] == 0.0
        assert tail_fraction([42], 0.5) == 1.0
        assert tail_fraction([42], 1.0) == 0.0


class TestTrace:
    def test_shape_and_growth(self):
        trace = synthesize_trace(
            60, np.random.default_rng(0), cap=20_480,
            requests_per_step=256,
        )
        assert trace.num_steps == 60
        p50 = trace.series("p50")
        # Median grows over training.
        assert np.mean(p50[-10:]) > np.mean(p50[:10])

    def test_max_pinned_at_cap_most_steps(self):
        trace = synthesize_trace(
            60, np.random.default_rng(0), cap=20_480,
            requests_per_step=512,
        )
        assert trace.cap_hit_fraction > 0.5

    def test_under_utilized_gap(self):
        """p75 stays well below the max (Figure 2's shaded zone)."""
        trace = synthesize_trace(
            40, np.random.default_rng(1), cap=20_480,
            requests_per_step=512,
        )
        gaps = trace.series("max_length") - trace.series("p75")
        assert np.mean(gaps) > 0.3 * 20_480

    def test_total_days_accounting(self):
        trace = synthesize_trace(
            10, np.random.default_rng(0), requests_per_step=64
        )
        # 10 steps * 40 min + 2 evals * 20 min = 440 min.
        assert trace.total_days == pytest.approx(440 / (60 * 24))

    def test_unknown_series_raises(self):
        trace = synthesize_trace(
            5, np.random.default_rng(0), requests_per_step=64
        )
        with pytest.raises(ConfigError):
            trace.series("nope")

    def test_validation(self):
        with pytest.raises(ConfigError):
            synthesize_trace(0, np.random.default_rng(0))


class TestSegmentedGrpoTrace:
    def _trace(self, **kwargs):
        defaults = dict(
            vocab_size=24,
            num_batches=3,
            groups_per_batch=6,
            group_size=4,
            num_families=3,
        )
        defaults.update(kwargs)
        return segmented_grpo_trace(
            np.random.default_rng(5), **defaults
        )

    def test_families_partition_the_regular_range(self):
        families = segment_families(24, 3, prompt_len=4)
        assert [f.name for f in families] == ["seg0", "seg1", "seg2"]
        # Contiguous, disjoint, covering [NUM_SPECIAL_TOKENS, vocab).
        assert families[0].lo == 3
        assert families[-1].hi == 24
        for a, b in zip(families, families[1:]):
            assert a.hi == b.lo

    def test_batch_shape_and_group_structure(self):
        trace = self._trace()
        assert len(trace.batches) == 3
        for batch in trace.batches:
            assert len(batch) == 6 * 4
            # Group members share a prompt (GRPO by construction).
            for g in range(6):
                group = batch[g * 4:(g + 1) * 4]
                assert all(p == group[0] for p in group)

    def test_segment_of_recovers_the_family(self):
        trace = self._trace()
        seen = set()
        for batch in trace.batches:
            for prompt in batch:
                label = trace.segment_of(prompt)
                assert label in trace.segments
                family = trace.families[
                    trace.segments.index(label)
                ]
                assert all(
                    family.lo <= t < family.hi for t in prompt
                )
                seen.add(label)
        # Round-robin: every batch exercises every segment.
        assert seen == set(trace.segments)

    def test_segment_of_unknown(self):
        trace = self._trace()
        assert trace.segment_of([]) is None
        assert trace.segment_of([0]) is None  # special token

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            segment_families(24, 0)
        with pytest.raises(ConfigError):
            segment_families(5, 10)  # more families than tokens
        with pytest.raises(ConfigError):
            PromptFamily(name="x", lo=2, hi=1)
        with pytest.raises(ConfigError):
            PromptFamily(name="x", lo=5, hi=9, prompt_len=0)
        with pytest.raises(ConfigError):
            segmented_grpo_trace(
                rng, 24, num_batches=0,
                groups_per_batch=1, group_size=1,
            )
        with pytest.raises(ConfigError):
            segmented_grpo_trace(
                rng, 24, num_batches=1,
                groups_per_batch=0, group_size=1,
            )
        with pytest.raises(ConfigError):
            segmented_grpo_trace(
                rng, 24, num_batches=1,
                groups_per_batch=1, group_size=0,
            )
