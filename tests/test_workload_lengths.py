"""Tests for long-tail length models and trace synthesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workload import (
    EmpiricalLengths,
    LognormalLengths,
    ParetoLengths,
    length_statistics,
    synthesize_trace,
)
from repro.workload.lengths import tail_fraction


class TestLognormal:
    def test_bounds(self):
        model = LognormalLengths(median=1000, sigma=1.0, cap=5000)
        lengths = model.sample(np.random.default_rng(0), 2000)
        assert lengths.min() >= 1
        assert lengths.max() <= 5000

    def test_median_roughly_respected(self):
        model = LognormalLengths(median=1000, sigma=1.0, cap=100_000)
        lengths = model.sample(np.random.default_rng(0), 5000)
        assert 800 < np.median(lengths) < 1250

    def test_long_tail_shape(self):
        """Most requests short, a few near the cap — the Figure 1a shape."""
        model = LognormalLengths(median=2500, sigma=1.1, cap=30_000)
        lengths = model.sample(np.random.default_rng(0), 5000)
        assert np.median(lengths) < 0.15 * lengths.max()
        assert (lengths >= 0.8 * 30_000).sum() >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [dict(median=0), dict(sigma=0), dict(cap=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            LognormalLengths(**kwargs)

    def test_negative_count(self):
        model = LognormalLengths()
        with pytest.raises(ConfigError):
            model.sample(np.random.default_rng(0), -1)


class TestPareto:
    def test_bounds(self):
        model = ParetoLengths(minimum=100, alpha=1.5, cap=10_000)
        lengths = model.sample(np.random.default_rng(0), 2000)
        assert lengths.min() >= 100
        assert lengths.max() <= 10_000

    def test_heavier_tail_than_lognormal(self):
        rng = np.random.default_rng(0)
        pareto = ParetoLengths(minimum=500, alpha=1.2, cap=10**7)
        sample = pareto.sample(rng, 5000)
        # Pareto(1.2): p99/p50 is large.
        assert np.percentile(sample, 99) / np.percentile(sample, 50) > 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParetoLengths(minimum=0)


class TestEmpirical:
    def test_resamples_observed(self):
        model = EmpiricalLengths([5, 10, 20], cap=100)
        sample = model.sample(np.random.default_rng(0), 100)
        assert set(np.unique(sample)).issubset({5, 10, 20})

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            EmpiricalLengths([], cap=10)

    def test_cap_applied(self):
        model = EmpiricalLengths([5, 500], cap=100)
        sample = model.sample(np.random.default_rng(0), 50)
        assert sample.max() <= 100


class TestStatistics:
    def test_keys(self):
        stats = length_statistics([1, 2, 3, 100])
        assert stats["max"] == 100
        assert stats["q3_max_gap"] == pytest.approx(100 - stats["p75"])

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            length_statistics([])

    def test_tail_fraction(self):
        assert tail_fraction([1, 1, 1, 10], 0.5) == pytest.approx(0.25)

    def test_tail_fraction_validation(self):
        with pytest.raises(ConfigError):
            tail_fraction([1], 0.0)


class TestTrace:
    def test_shape_and_growth(self):
        trace = synthesize_trace(
            60, np.random.default_rng(0), cap=20_480,
            requests_per_step=256,
        )
        assert trace.num_steps == 60
        p50 = trace.series("p50")
        # Median grows over training.
        assert np.mean(p50[-10:]) > np.mean(p50[:10])

    def test_max_pinned_at_cap_most_steps(self):
        trace = synthesize_trace(
            60, np.random.default_rng(0), cap=20_480,
            requests_per_step=512,
        )
        assert trace.cap_hit_fraction > 0.5

    def test_under_utilized_gap(self):
        """p75 stays well below the max (Figure 2's shaded zone)."""
        trace = synthesize_trace(
            40, np.random.default_rng(1), cap=20_480,
            requests_per_step=512,
        )
        gaps = trace.series("max_length") - trace.series("p75")
        assert np.mean(gaps) > 0.3 * 20_480

    def test_total_days_accounting(self):
        trace = synthesize_trace(
            10, np.random.default_rng(0), requests_per_step=64
        )
        # 10 steps * 40 min + 2 evals * 20 min = 440 min.
        assert trace.total_days == pytest.approx(440 / (60 * 24))

    def test_unknown_series_raises(self):
        trace = synthesize_trace(
            5, np.random.default_rng(0), requests_per_step=64
        )
        with pytest.raises(ConfigError):
            trace.series("nope")

    def test_validation(self):
        with pytest.raises(ConfigError):
            synthesize_trace(0, np.random.default_rng(0))
