"""Tests for the TinyLM substrate: shapes, windows, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, GenerationError
from repro.llm import ParamSet, TinyLM, TinyLMConfig, softmax
from repro.llm.model import contexts_from_sequences
from repro.llm.vocab import PAD_ID


@pytest.fixture()
def model() -> TinyLM:
    cfg = TinyLMConfig(
        vocab_size=16, hidden_size=8, context_window=3, num_layers=3
    )
    return TinyLM(cfg, np.random.default_rng(0))


class TestConfigValidation:
    def test_vocab_too_small(self):
        with pytest.raises(ConfigError):
            TinyLMConfig(vocab_size=2)

    def test_bad_hidden(self):
        with pytest.raises(ConfigError):
            TinyLMConfig(hidden_size=0)

    def test_bad_window(self):
        with pytest.raises(ConfigError):
            TinyLMConfig(context_window=0)

    def test_bad_layers(self):
        with pytest.raises(ConfigError):
            TinyLMConfig(num_layers=0)

    def test_bad_init_scale(self):
        with pytest.raises(ConfigError):
            TinyLMConfig(init_scale=0.0)


class TestForward:
    def test_shapes(self, model):
        tokens = np.zeros((2, 5), dtype=int)
        result = model.forward(tokens)
        assert result.logits.shape == (2, 5, 16)
        assert len(result.hiddens) == 3
        assert result.last_hidden.shape == (2, 5, 8)

    def test_rejects_1d(self, model):
        with pytest.raises(GenerationError):
            model.forward(np.zeros(5, dtype=int))

    def test_cache_only_when_requested(self, model):
        tokens = np.zeros((1, 4), dtype=int)
        assert model.forward(tokens).cache is None
        assert model.forward(tokens, keep_cache=True).cache is not None

    def test_causality(self, model):
        """Changing a future token must not affect earlier logits."""
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 16, size=(1, 6))
        base = model.forward(tokens).logits
        tokens2 = tokens.copy()
        tokens2[0, 5] = (tokens2[0, 5] + 1) % 16
        changed = model.forward(tokens2).logits
        assert np.allclose(base[0, :5], changed[0, :5])

    def test_window_limit(self, model):
        """Tokens beyond the context window have no influence."""
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 16, size=(1, 6))
        base = model.forward(tokens).logits
        tokens2 = tokens.copy()
        tokens2[0, 0] = (tokens2[0, 0] + 1) % 16
        changed = model.forward(tokens2).logits
        # Window = 3, so position 0 only affects logits at positions 0..2.
        assert np.allclose(base[0, 3:], changed[0, 3:])
        assert not np.allclose(base[0, 0], changed[0, 0])

    def test_step_matches_forward(self, model):
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, 16, size=(2, 5))
        full = model.forward(tokens)
        ctx = tokens[:, -3:]
        logits, hiddens = model.step(ctx)
        assert np.allclose(logits, full.logits[:, -1, :])
        assert np.allclose(hiddens[-1], full.hiddens[-1][:, -1, :])

    def test_step_shape_validation(self, model):
        with pytest.raises(GenerationError):
            model.step(np.zeros((2, 5), dtype=int))


class TestBackward:
    def test_gradient_check(self, model):
        """Analytic gradients match finite differences for a CE loss."""
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, 16, size=(2, 4))
        targets = rng.integers(0, 16, size=(2, 4))

        def loss():
            probs = softmax(model.forward(tokens).logits)
            idx = (
                np.arange(2)[:, None],
                np.arange(4)[None, :],
                targets,
            )
            return -float(np.sum(np.log(probs[idx])))

        result = model.forward(tokens, keep_cache=True)
        dlogits = softmax(result.logits)
        for b in range(2):
            for t in range(4):
                dlogits[b, t, targets[b, t]] -= 1.0
        grads = model.backward(result.cache, dlogits)

        for name in grads.names():
            arr = model.params[name]
            for flat in rng.integers(0, arr.size, size=3):
                idx = np.unravel_index(flat, arr.shape)
                eps = 1e-6
                orig = arr[idx]
                arr[idx] = orig + eps
                up = loss()
                arr[idx] = orig - eps
                down = loss()
                arr[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert grads[name][idx] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), name

    def test_position_mask_zeroes_gradient(self, model):
        tokens = np.zeros((1, 4), dtype=int)
        result = model.forward(tokens, keep_cache=True)
        dlogits = np.ones_like(result.logits)
        mask = np.zeros((1, 4))
        grads = model.backward(result.cache, dlogits, position_mask=mask)
        assert grads.l2_norm() == 0.0

    def test_dlogits_shape_validated(self, model):
        tokens = np.zeros((1, 4), dtype=int)
        result = model.forward(tokens, keep_cache=True)
        with pytest.raises(GenerationError):
            model.backward(result.cache, np.zeros((1, 4, 99)))


class TestClone:
    def test_clone_is_independent(self, model):
        twin = model.clone()
        assert twin.params.max_abs_diff(model.params) == 0.0
        twin.params["b_in"] += 1.0
        assert model.params.max_abs_diff(twin.params) > 0.0


class TestContexts:
    def test_padding_short_sequences(self):
        ctx = contexts_from_sequences([[7]], 3)
        assert ctx.tolist() == [[PAD_ID, PAD_ID, 7]]

    def test_truncates_long_sequences(self):
        ctx = contexts_from_sequences([[1, 2, 3, 4, 5]], 3)
        assert ctx.tolist() == [[3, 4, 5]]

    def test_empty_sequence_all_pad(self):
        ctx = contexts_from_sequences([[]], 2)
        assert ctx.tolist() == [[PAD_ID, PAD_ID]]


class TestParamSet:
    def test_add_scaled_and_norm(self):
        params = ParamSet({"a": np.ones(4)})
        grads = ParamSet({"a": np.full(4, 2.0)})
        params.add_scaled(grads, -0.5)
        assert np.allclose(params["a"], 0.0)

    def test_name_mismatch_raises(self):
        params = ParamSet({"a": np.ones(2)})
        other = ParamSet({"b": np.ones(2)})
        with pytest.raises(ConfigError):
            params.add_scaled(other, 1.0)

    def test_filtered(self):
        params = ParamSet({"w": np.ones(2), "frozen_e": np.ones(3)})
        kept = params.filtered(lambda n: not n.startswith("frozen"))
        assert kept.names() == ["w"]

    def test_clip_global_norm(self):
        params = ParamSet({"a": np.full(4, 10.0)})
        pre = params.clip_global_norm(1.0)
        assert pre == pytest.approx(20.0)
        assert params.l2_norm() == pytest.approx(1.0)

    def test_load_state_dict_roundtrip(self):
        params = ParamSet({"a": np.arange(3, dtype=float)})
        state = params.state_dict()
        params["a"] += 5
        params.load_state_dict(state)
        assert np.allclose(params["a"], [0, 1, 2])

    def test_load_unknown_name_raises(self):
        params = ParamSet({"a": np.zeros(2)})
        with pytest.raises(ConfigError):
            params.load_state_dict({"zzz": np.zeros(2)})

    def test_load_shape_mismatch_raises(self):
        params = ParamSet({"a": np.zeros(2)})
        with pytest.raises(ConfigError):
            params.load_state_dict({"a": np.zeros(3)})

    def test_num_parameters(self):
        params = ParamSet({"a": np.zeros((2, 3)), "b": np.zeros(5)})
        assert params.num_parameters == 11
