"""Model-based fuzzing of the scheduler's request state machine.

A seeded fuzzer drives :class:`~repro.specdec.scheduler.
ContinuousBatchScheduler` with random sequences of legal AND illegal
operations, mirroring every legal transition in a dead-simple reference
model (a dict of lifecycle states plus counters).  After every
operation the scheduler must agree with the reference on:

* each request's lifecycle state,
* the live/waiting/parked/resuming/finished accounting (no request
  ever lost or double-counted, the slot capacity never exceeded),
* which operations raise — every illegal transition must raise
  :class:`~repro.errors.SpecDecodeError` and leave all state unchanged.

The reference model is deliberately not the implementation: it knows
nothing about slots, hidden states, or queues — only the lifecycle
graph — so drift in either direction is caught.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np
import pytest

from repro.errors import SpecDecodeError
from repro.specdec.scheduler import (
    ContinuousBatchScheduler,
    RequestLifecycle,
    SequenceRequest,
)

MAX_BATCH = 3
EOS_ID = 2  # never committed by the fuzzer: requests finish by cap


class ReferenceModel:
    """Lifecycle bookkeeping the scheduler must agree with."""

    def __init__(self) -> None:
        self.state: Dict[int, RequestLifecycle] = {}
        self.resuming: Set[int] = set()  # PARKED ids queued to re-admit
        self.stolen: Set[int] = set()

    def ids_in(self, *states: RequestLifecycle) -> Set[int]:
        return {
            request_id
            for request_id, state in self.state.items()
            if state in states and request_id not in self.stolen
        }

    @property
    def live(self) -> Set[int]:
        return self.ids_in(RequestLifecycle.LIVE)

    @property
    def waiting(self) -> Set[int]:
        return self.ids_in(RequestLifecycle.WAITING)

    @property
    def parked(self) -> Set[int]:
        return {
            i for i in self.ids_in(RequestLifecycle.PARKED)
            if i not in self.resuming
        }

    @property
    def finished(self) -> Set[int]:
        return self.ids_in(
            RequestLifecycle.FINISHED,
            RequestLifecycle.CANCELLED,
            RequestLifecycle.EXPIRED,
        )


def _check(scheduler: ContinuousBatchScheduler, model: ReferenceModel):
    """Assert scheduler accounting matches the reference exactly."""
    assert {
        s.request.request_id for s in scheduler.live
    } == model.live
    assert {
        r.request_id for r in scheduler.waiting
    } == model.waiting
    assert set(scheduler.parked) == model.parked
    assert {
        s.request.request_id for s in scheduler.resuming_slots
    } == model.resuming
    assert scheduler.num_live == len(model.live)
    assert scheduler.num_waiting == len(model.waiting)
    assert scheduler.num_parked == len(model.parked)
    assert scheduler.num_resuming == len(model.resuming)
    assert scheduler.num_finished == len(model.finished)
    assert scheduler.num_live <= MAX_BATCH
    # No request is ever in two places at once or lost.
    tracked = (
        model.live | model.waiting | model.parked
        | model.resuming | model.finished
    )
    assert tracked == {
        i for i in model.state if i not in model.stolen
    }
    # Lifecycle states agree id by id.
    for request_id, state in model.state.items():
        if request_id in model.stolen:
            with pytest.raises(SpecDecodeError):
                scheduler.state(request_id)
        else:
            got = scheduler.state(request_id)
            if request_id in model.resuming:
                assert got is RequestLifecycle.PARKED
            else:
                assert got is state


def _request(request_id: int, rng) -> SequenceRequest:
    return SequenceRequest(
        request_id=request_id,
        prompt=[3, 4, int(rng.integers(3, 20))],
        max_new_tokens=int(rng.integers(1, 4)),
        rng=np.random.default_rng(request_id),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_scheduler_state_machine_fuzz(seed):
    rng = np.random.default_rng(seed)
    scheduler = ContinuousBatchScheduler(max_batch_size=MAX_BATCH)
    model = ReferenceModel()
    next_id = 0
    raised_illegal = 0

    for _ in range(400):
        op = rng.choice(
            [
                "push", "admit", "readmit", "park", "resume",
                "cancel", "expire", "finish", "tick", "steal",
                "illegal",
            ],
            p=[
                0.18, 0.14, 0.08, 0.12, 0.08,
                0.08, 0.05, 0.12, 0.05, 0.04,
                0.06,
            ],
        )
        known = [i for i in model.state if i not in model.stolen]
        any_id = (
            int(rng.choice(known)) if known else None
        )

        if op == "push":
            scheduler.push(
                _request(next_id, rng),
                urgent=bool(rng.integers(0, 2)),
            )
            model.state[next_id] = RequestLifecycle.WAITING
            next_id += 1
        elif op == "admit":
            admitted = scheduler.admit()
            free = MAX_BATCH - len(model.live | model.resuming)
            assert len(admitted) == min(len(model.waiting), max(free, 0))
            for slot in admitted:
                model.state[slot.request.request_id] = (
                    RequestLifecycle.LIVE
                )
        elif op == "readmit":
            readmitted = scheduler.readmit_parked()
            for slot in readmitted:
                request_id = slot.request.request_id
                assert request_id in model.resuming
                model.resuming.discard(request_id)
                model.state[request_id] = RequestLifecycle.LIVE
        elif op == "park":
            if any_id is None:
                continue
            legal = model.state[any_id] is RequestLifecycle.LIVE
            if legal:
                scheduler.park(any_id)
                model.state[any_id] = RequestLifecycle.PARKED
            else:
                with pytest.raises(SpecDecodeError):
                    scheduler.park(any_id)
                raised_illegal += 1
        elif op == "resume":
            if any_id is None:
                continue
            legal = (
                model.state[any_id] is RequestLifecycle.PARKED
                and any_id not in model.resuming
            )
            if legal:
                scheduler.resume(any_id)
                model.resuming.add(any_id)
            else:
                with pytest.raises(SpecDecodeError):
                    scheduler.resume(any_id)
                raised_illegal += 1
        elif op in ("cancel", "expire"):
            if any_id is None:
                continue
            terminate = (
                scheduler.cancel if op == "cancel" else scheduler.expire
            )
            slot = terminate(any_id)
            if model.state[any_id] in (
                RequestLifecycle.FINISHED,
                RequestLifecycle.CANCELLED,
                RequestLifecycle.EXPIRED,
            ):
                assert slot is None  # unknown-or-finished contract
            else:
                assert slot is not None
                assert slot.cancelled if op == "cancel" else slot.expired
                model.resuming.discard(any_id)
                model.state[any_id] = (
                    RequestLifecycle.CANCELLED if op == "cancel"
                    else RequestLifecycle.EXPIRED
                )
        elif op == "finish":
            live = sorted(model.live)
            if not live:
                continue
            victim = int(rng.choice(live))
            for slot in scheduler.live:
                if slot.request.request_id == victim:
                    # Commit to the cap (no EOS): slot.finished flips.
                    remaining = (
                        slot.request.max_new_tokens - len(slot.response)
                    )
                    slot.commit([5] * remaining, EOS_ID)
            retired = scheduler.retire_finished()
            assert victim in {
                s.request.request_id for s in retired
            }
            for slot in retired:
                model.state[slot.request.request_id] = (
                    RequestLifecycle.FINISHED
                )
        elif op == "tick":
            scheduler.tick()
        elif op == "steal":
            count = int(rng.integers(0, 3))
            stolen = scheduler.steal_waiting(count)
            waiting_before = len(model.waiting)
            assert len(stolen) == min(count, waiting_before)
            for request, waited in stolen:
                assert waited >= 0
                model.stolen.add(request.request_id)
        elif op == "illegal":
            # Duplicate push and unknown-id probes must raise and
            # change nothing.
            if any_id is not None:
                with pytest.raises(SpecDecodeError):
                    scheduler.push(_request(any_id, rng))
                raised_illegal += 1
            with pytest.raises(SpecDecodeError):
                scheduler.state(10_000_000)

        _check(scheduler, model)

    # The run genuinely exercised the illegal-transition guard rails.
    assert raised_illegal >= 5
    assert next_id >= 20


def test_results_guard_rails():
    """results() fails loudly while work or parked requests remain."""
    scheduler = ContinuousBatchScheduler(max_batch_size=2)
    scheduler.push(
        SequenceRequest(0, [3, 4], 2, np.random.default_rng(0))
    )
    with pytest.raises(SpecDecodeError):
        scheduler.results()  # still waiting
    scheduler.admit()
    with pytest.raises(SpecDecodeError):
        scheduler.results()  # still live
    scheduler.park(0)
    with pytest.raises(SpecDecodeError):
        scheduler.results()  # parked is neither work nor a result
    scheduler.cancel(0)
    assert [s.request.request_id for s in scheduler.results()] == [0]


def test_urgent_lane_ordering():
    """Urgent pushes queue ahead of non-urgent backlog, FIFO among
    themselves, and admission drains the lane first."""
    scheduler = ContinuousBatchScheduler(max_batch_size=10)
    rng = np.random.default_rng(0)
    for i in range(3):  # batch backlog
        scheduler.push(_request(i, rng))
    scheduler.push(_request(3, rng), urgent=True)
    scheduler.push(_request(4, rng), urgent=True)
    assert [r.request_id for r in scheduler.waiting] == [3, 4, 0, 1, 2]
    admitted = scheduler.admit()
    assert [s.request.request_id for s in admitted] == [3, 4, 0, 1, 2]
