"""Tests for synthetic-corpus pretraining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm import TinyLM, TinyLMConfig
from repro.llm.pretrain import (
    pretrain_on_sequences,
    pretrained_target,
    synthetic_corpus,
)
from repro.llm.vocab import BOS_ID, EOS_ID, NUM_SPECIAL_TOKENS


class TestCorpus:
    def test_shapes_and_tokens(self):
        corpus = synthetic_corpus(
            16, 10, 20, np.random.default_rng(0)
        )
        assert len(corpus) == 10
        for seq in corpus:
            assert seq[0] == BOS_ID
            assert all(0 <= t < 16 for t in seq)

    def test_chain_structure_present(self):
        corpus = synthetic_corpus(
            16, 20, 40, np.random.default_rng(0), chain_prob=1.0,
            eos_prob=0.0,
        )
        lo = NUM_SPECIAL_TOKENS
        span = 16 - lo
        for seq in corpus:
            body = seq[1:]
            for a, b in zip(body, body[1:]):
                assert (a - lo + 1) % span == (b - lo)

    def test_eos_terminates(self):
        corpus = synthetic_corpus(
            16, 30, 40, np.random.default_rng(0), eos_prob=0.5
        )
        assert any(seq[-1] == EOS_ID for seq in corpus)

    def test_validation(self):
        with pytest.raises(ConfigError):
            synthetic_corpus(16, 0, 20, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            synthetic_corpus(
                16, 1, 20, np.random.default_rng(0), chain_prob=2.0
            )


class TestPretraining:
    def test_loss_decreases(self):
        cfg = TinyLMConfig(
            vocab_size=16, hidden_size=12, context_window=3,
            num_layers=2,
        )
        model = TinyLM(cfg, np.random.default_rng(0))
        corpus = synthetic_corpus(16, 24, 30, np.random.default_rng(1))
        report = pretrain_on_sequences(model, corpus, epochs=40)
        assert report.final_loss < report.initial_loss

    def test_model_becomes_predictable(self):
        """After pretraining on deterministic chains the model's greedy
        prediction follows the successor function."""
        cfg = TinyLMConfig(
            vocab_size=16, hidden_size=16, context_window=3,
            num_layers=2,
        )
        rng = np.random.default_rng(0)
        model = TinyLM(cfg, rng)
        corpus = synthetic_corpus(
            16, 48, 40, rng, chain_prob=1.0, eos_prob=0.0
        )
        pretrain_on_sequences(model, corpus, epochs=150)
        lo = NUM_SPECIAL_TOKENS
        span = 16 - lo
        hits = 0
        for start in range(lo, 16):
            seq = [BOS_ID, start,
                   lo + (start - lo + 1) % span]
            logits = model.forward(
                np.asarray([seq], dtype=np.int64)
            ).logits
            predicted = int(np.argmax(logits[0, -1]))
            expected = lo + (seq[-1] - lo + 1) % span
            hits += predicted == expected
        assert hits >= 0.7 * span

    def test_too_short_sequences_raise(self):
        cfg = TinyLMConfig(vocab_size=16, hidden_size=8)
        model = TinyLM(cfg, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            pretrain_on_sequences(model, [[1]], epochs=1)

    def test_pretrained_target_convenience(self):
        cfg = TinyLMConfig(
            vocab_size=16, hidden_size=8, context_window=3,
            num_layers=2,
        )
        model = pretrained_target(
            cfg, np.random.default_rng(0), corpus_sequences=12,
            corpus_length=20, epochs=10,
        )
        assert model.config.vocab_size == 16
