"""Tests for the shared prefix-cache subsystem (repro.cache).

The radix :class:`~repro.cache.prefix_index.PrefixIndex` and the
:class:`~repro.cache.manager.KVCacheManager` are correctness-critical
in a specific way: the engine serves *hidden hand-offs* from them, so a
wrong match, a corrupted entry, or an eviction of pinned state would
silently change committed tokens.  These tests pin the matching
semantics, the ref-count/eviction interaction, and the deterministic
LRU order the engine's reproducibility guarantees lean on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheStats, KVCacheManager, PrefixIndex
from repro.errors import CacheError


class TestPrefixIndex:
    def test_insert_contains_exact(self):
        index = PrefixIndex()
        assert index.insert([1, 2, 3])
        assert index.contains([1, 2, 3])
        assert not index.contains([1, 2])       # prefix, not a member
        assert not index.contains([1, 2, 3, 4])
        assert len(index) == 1

    def test_duplicate_insert_is_noop(self):
        index = PrefixIndex()
        assert index.insert([1, 2, 3])
        assert not index.insert([1, 2, 3])
        assert len(index) == 1

    def test_prefix_of_existing_sequence_is_insertable(self):
        index = PrefixIndex()
        index.insert([1, 2, 3, 4])
        assert index.insert([1, 2])
        assert index.contains([1, 2])
        assert index.contains([1, 2, 3, 4])
        assert len(index) == 2

    def test_longest_prefix_full_and_partial(self):
        index = PrefixIndex()
        index.insert([1, 2, 3, 4])
        index.insert([1, 2, 9])
        assert index.longest_prefix([1, 2, 3, 4]) == 4
        assert index.longest_prefix([1, 2, 3, 7]) == 3
        assert index.longest_prefix([1, 2, 9, 9]) == 3
        assert index.longest_prefix([1, 2]) == 2
        assert index.longest_prefix([7, 7]) == 0
        # Longer query than any member: match stops at the member end.
        assert index.longest_prefix([1, 2, 3, 4, 5, 6]) == 4

    def test_longest_prefix_counts_partial_edge_match(self):
        # Path compression stores [5, 6, 7, 8] on one edge; a query
        # diverging mid-edge must still credit the shared run.
        index = PrefixIndex()
        index.insert([5, 6, 7, 8])
        assert index.longest_prefix([5, 6, 7, 0]) == 3
        assert index.longest_prefix([5, 0]) == 1

    def test_remove_and_merge(self):
        index = PrefixIndex()
        index.insert([1, 2, 3])
        index.insert([1, 2, 4, 5])
        assert index.remove([1, 2, 3])
        assert not index.contains([1, 2, 3])
        assert index.contains([1, 2, 4, 5])
        # The [1,2] split node should have merged back: matching still
        # spans the full remaining sequence.
        assert index.longest_prefix([1, 2, 4, 5]) == 4
        assert index.longest_prefix([1, 2, 3]) == 2
        assert not index.remove([1, 2, 3])  # already gone
        assert len(index) == 1

    def test_remove_keeps_shorter_member(self):
        index = PrefixIndex()
        index.insert([1, 2])
        index.insert([1, 2, 3, 4])
        assert index.remove([1, 2, 3, 4])
        assert index.contains([1, 2])
        assert index.longest_prefix([1, 2, 3, 4]) == 2

    def test_iter_sequences_round_trips(self):
        members = [(1, 2, 3), (1, 2, 4), (9,), (1, 2)]
        index = PrefixIndex()
        for member in members:
            index.insert(member)
        assert sorted(index.iter_sequences()) == sorted(members)

    def test_empty_sequence_rejected(self):
        index = PrefixIndex()
        with pytest.raises(CacheError):
            index.insert([])
        with pytest.raises(CacheError):
            index.remove(())


def _hidden(tag: float) -> np.ndarray:
    return np.full((2, 3), tag, dtype=np.float64)


class TestKVCacheManager:
    def test_lookup_hit_returns_copy(self):
        cache = KVCacheManager(capacity_tokens=16)
        cache.insert((1, 2, 3), _hidden(7.0), cycle=0)
        out = cache.lookup((1, 2, 3), cycle=1)
        assert out is not None and np.array_equal(out, _hidden(7.0))
        out[:] = 0.0  # mutating the copy must not reach the cache
        again = cache.lookup((1, 2, 3), cycle=2)
        assert np.array_equal(again, _hidden(7.0))
        assert cache.stats.hits == 2 and cache.stats.misses == 0

    def test_miss_accounting_and_hit_rate(self):
        cache = KVCacheManager(capacity_tokens=16)
        assert cache.lookup((4, 5), cycle=0) is None
        cache.insert((4, 5), _hidden(1.0), cycle=0)
        assert cache.lookup((4, 5), cycle=1) is not None
        assert cache.stats.lookups == 2
        assert cache.hit_rate == pytest.approx(0.5)

    def test_insert_stores_copy(self):
        cache = KVCacheManager(capacity_tokens=16)
        hidden = _hidden(3.0)
        cache.insert((1,), hidden, cycle=0)
        hidden[:] = 0.0
        assert np.array_equal(cache.lookup((1,), 1), _hidden(3.0))

    def test_lru_eviction_by_last_touch(self):
        cache = KVCacheManager(capacity_tokens=6)
        cache.insert((1, 1, 1), _hidden(1.0), cycle=0)
        cache.insert((2, 2, 2), _hidden(2.0), cycle=1)
        cache.lookup((1, 1, 1), cycle=2)  # touch -> (2,2,2) is LRU
        cache.insert((3, 3, 3), _hidden(3.0), cycle=3)
        assert cache.contains((1, 1, 1))
        assert not cache.contains((2, 2, 2))
        assert cache.contains((3, 3, 3))
        assert cache.stats.evictions == 1
        assert cache.cached_tokens == 6

    def test_eviction_tie_breaks_by_insertion_order(self):
        cache = KVCacheManager(capacity_tokens=6)
        cache.insert((1, 1, 1), _hidden(1.0), cycle=0)
        cache.insert((2, 2, 2), _hidden(2.0), cycle=0)  # same touch
        cache.insert((3, 3, 3), _hidden(3.0), cycle=1)
        assert not cache.contains((1, 1, 1))  # older insertion evicted
        assert cache.contains((2, 2, 2))

    def test_pinned_entries_never_evicted(self):
        cache = KVCacheManager(capacity_tokens=6)
        cache.insert((1, 1, 1), _hidden(1.0), cycle=0)
        assert cache.acquire((1, 1, 1))
        cache.insert((2, 2, 2), _hidden(2.0), cycle=1)
        # Inserting a third entry can only evict the unpinned one.
        cache.insert((3, 3, 3), _hidden(3.0), cycle=2)
        assert cache.contains((1, 1, 1))
        assert not cache.contains((2, 2, 2))
        # With every remaining entry pinned, a new insert is declined.
        assert cache.acquire((3, 3, 3))
        assert not cache.insert((4, 4, 4), _hidden(4.0), cycle=3)
        assert cache.stats.rejected == 1
        assert cache.contains((1, 1, 1)) and cache.contains((3, 3, 3))

    def test_infeasible_insert_does_not_sweep_warm_entries(self):
        # Pinned entries alone leave no room for the insert: it must
        # be rejected WITHOUT evicting the warm unpinned entry (a
        # destructive sweep would trade every future hit for nothing).
        cache = KVCacheManager(capacity_tokens=9)
        cache.insert((1, 1, 1), _hidden(1.0), cycle=0)
        cache.insert((2, 2, 2), _hidden(2.0), cycle=0)
        cache.acquire((1, 1, 1))
        cache.acquire((2, 2, 2))
        cache.insert((3, 3, 3), _hidden(3.0), cycle=1)  # warm, unpinned
        assert not cache.insert((4, 4, 4, 4), _hidden(4.0), cycle=2)
        assert cache.contains((3, 3, 3))
        assert cache.stats.evictions == 0
        assert cache.stats.rejected == 1

    def test_oversized_entry_rejected_outright(self):
        cache = KVCacheManager(capacity_tokens=2)
        assert not cache.insert((1, 2, 3), _hidden(1.0), cycle=0)
        assert cache.num_entries == 0
        assert cache.stats.rejected == 1

    def test_acquire_release_refcount(self):
        cache = KVCacheManager(capacity_tokens=8)
        cache.insert((1, 2), _hidden(1.0), cycle=0)
        assert cache.refcount((1, 2)) == 0
        assert cache.acquire((1, 2))
        assert cache.acquire((1, 2))
        assert cache.refcount((1, 2)) == 2
        assert cache.release((1, 2))
        assert cache.refcount((1, 2)) == 1
        assert not cache.acquire((9, 9))   # absent
        assert not cache.release((9, 9))

    def test_release_underflow_raises(self):
        cache = KVCacheManager(capacity_tokens=8)
        cache.insert((1, 2), _hidden(1.0), cycle=0)
        with pytest.raises(CacheError):
            cache.release((1, 2))

    def test_explicit_evict_refuses_pinned(self):
        cache = KVCacheManager(capacity_tokens=8)
        cache.insert((1, 2), _hidden(1.0), cycle=0)
        cache.acquire((1, 2))
        with pytest.raises(CacheError):
            cache.evict((1, 2))
        cache.release((1, 2))
        assert cache.evict((1, 2))
        assert not cache.evict((1, 2))

    def test_longest_prefix_probe_is_non_accounting(self):
        cache = KVCacheManager(capacity_tokens=8)
        cache.insert((1, 2, 3), _hidden(1.0), cycle=0)
        assert cache.longest_prefix((1, 2, 9)) == 2
        assert cache.longest_prefix((1, 2, 3)) == 3
        assert cache.stats.lookups == 0

    def test_reinsert_refreshes_touch(self):
        cache = KVCacheManager(capacity_tokens=6)
        cache.insert((1, 1, 1), _hidden(1.0), cycle=0)
        cache.insert((2, 2, 2), _hidden(2.0), cycle=1)
        cache.insert((1, 1, 1), _hidden(1.0), cycle=2)  # refresh
        cache.insert((3, 3, 3), _hidden(3.0), cycle=3)
        assert cache.contains((1, 1, 1))
        assert not cache.contains((2, 2, 2))

    def test_invalid_construction(self):
        with pytest.raises(CacheError):
            KVCacheManager(capacity_tokens=0)
        cache = KVCacheManager(capacity_tokens=4)
        with pytest.raises(CacheError):
            cache.insert((), _hidden(0.0), cycle=0)

    def test_stats_dataclass_defaults(self):
        stats = CacheStats()
        assert stats.lookups == 0 and stats.hit_rate == 0.0
