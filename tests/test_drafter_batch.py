"""Batched drafter calls must be token-identical to per-state calls.

The flat tree builder issues one ``propose_batch``/``extend_batch`` per
tree depth for the whole live batch; its byte-identity to per-node
drafting rests on every batched row being unaffected by its neighbours.
These tests pin that contract for all three drafters — the vectorised
EAGLE overrides and the per-state base-class fallbacks alike — mirroring
the ``begin_batch`` identity tests added with the batched prefill path.
"""

import numpy as np
import pytest

from repro.drafter.ngram import NgramDrafter, NgramDrafterConfig
from repro.drafter.small_lm import SmallLmDrafter
from repro.errors import DrafterError
from repro.llm.model import TinyLM, TinyLMConfig

TEMPERATURES = [0.0, 0.9]


@pytest.fixture(scope="module")
def ngram_drafter(rollout_sequences):
    drafter = NgramDrafter(
        NgramDrafterConfig(vocab_size=24, max_order=3)
    )
    drafter.observe_rollouts(rollout_sequences)
    return drafter


@pytest.fixture(scope="module")
def small_lm_drafter():
    model = TinyLM(
        TinyLMConfig(
            vocab_size=24, hidden_size=8, context_window=4, num_layers=2
        ),
        np.random.default_rng(31),
    )
    return SmallLmDrafter(model, target_vocab_size=24)


def _states(drafter, target):
    """A batch of drafting states rooted at distinct prefixes."""
    rng = np.random.default_rng(17)
    prefixes = [[1, 5, 6], [2, 7], [3, 8, 9, 4], [2, 7, 7]]
    hiddens = [
        np.stack(
            [
                rng.normal(size=target.config.hidden_size)
                for _ in range(target.num_layers)
            ],
            axis=0,
        )
        for _ in prefixes
    ]
    return drafter.begin_batch(prefixes, hiddens)


def _drafter_cases(request):
    return {
        "eagle": request.getfixturevalue("trained_drafter"),
        "ngram": request.getfixturevalue("ngram_drafter"),
        "small_lm": request.getfixturevalue("small_lm_drafter"),
    }


@pytest.mark.parametrize("name", ["eagle", "ngram", "small_lm"])
@pytest.mark.parametrize("temperature", TEMPERATURES)
class TestProposeBatchIdentity:
    def test_rows_bitwise_equal_per_state(
        self, request, target, name, temperature
    ):
        """Each batched proposal row equals the per-state proposal,
        bitwise.  For EAGLE this is the einsum row-stability guarantee
        the flat tree builder's losslessness rests on; for the fallback
        drafters it is trivially the same code path."""
        drafter = _drafter_cases(request)[name]
        states = _states(drafter, target)
        batched = drafter.propose_batch(states, temperature)
        assert len(batched) == len(states)
        for state, row in zip(states, batched):
            single = drafter.propose(state, temperature)
            assert np.array_equal(single, row)


@pytest.mark.parametrize("name", ["eagle", "ngram", "small_lm"])
class TestExtendBatchIdentity:
    def test_states_equal_per_pair(self, request, target, name):
        drafter = _drafter_cases(request)[name]
        states = _states(drafter, target)
        tokens = [4, 11, 0, 23]
        batched = drafter.extend_batch(states, tokens)
        assert len(batched) == len(states)
        for state, token, result in zip(states, tokens, batched):
            single = drafter.extend(state, token)
            if hasattr(single, "hidden"):
                assert np.array_equal(single.hidden, result.hidden)
            else:
                assert single == result

    def test_length_mismatch_raises(self, request, target, name):
        drafter = _drafter_cases(request)[name]
        states = _states(drafter, target)
        with pytest.raises(DrafterError):
            drafter.extend_batch(states, [1])


def test_propose_batch_empty_is_empty(trained_drafter):
    assert trained_drafter.propose_batch([], 0.7) == []
