"""Tests for the lossless accept/reject rules.

The key properties verified statistically (against *analytic* target
distributions, never two-sample):

* chain rule: committed token ~ target distribution regardless of drafter,
* multi-round rule: same, for any number of sibling candidates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecDecodeError
from repro.specdec import (
    accept_token,
    multi_round_accept,
    residual_distribution,
)
from repro.specdec.acceptance import sequential_residual_draws


def _random_dist(rng: np.random.Generator, size: int) -> np.ndarray:
    raw = rng.random(size) + 1e-3
    return raw / raw.sum()


class TestResidual:
    def test_identical_distributions_fall_back(self):
        p = np.array([0.5, 0.5])
        out = residual_distribution(p, p)
        assert np.allclose(out, p)

    def test_known_residual(self):
        p = np.array([0.6, 0.4])
        q = np.array([0.2, 0.8])
        out = residual_distribution(p, q)
        assert np.allclose(out, [1.0, 0.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(SpecDecodeError):
            residual_distribution(np.ones(2) / 2, np.ones(3) / 3)

    @given(st.integers(2, 10), st.integers(0, 1000))
    def test_property_valid_distribution(self, size, seed):
        rng = np.random.default_rng(seed)
        p = _random_dist(rng, size)
        q = _random_dist(rng, size)
        out = residual_distribution(p, q)
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()


class TestAcceptToken:
    def test_zero_draft_prob_raises(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        with pytest.raises(SpecDecodeError):
            accept_token(p, q, 1, np.random.default_rng(0))

    def test_always_accept_when_target_dominates(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert accept_token(p, q, 0, rng).accepted

    def test_always_reject_zero_target(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        rng = np.random.default_rng(0)
        result = accept_token(p, q, 1, rng)
        assert not result.accepted
        assert np.allclose(result.residual, [1.0, 0.0])

    def test_chain_rule_lossless(self):
        """Draft from q, accept/resample: output must be ~ p (chi-square)."""
        rng = np.random.default_rng(42)
        p = np.array([0.5, 0.3, 0.15, 0.05])
        q = np.array([0.1, 0.2, 0.3, 0.4])  # deliberately mismatched
        n = 40000
        counts = np.zeros(4)
        for _ in range(n):
            token = rng.choice(4, p=q)
            result = accept_token(p, q, int(token), rng)
            if result.accepted:
                counts[token] += 1
            else:
                counts[rng.choice(4, p=result.residual)] += 1
        chi2 = float(np.sum((counts - n * p) ** 2 / (n * p)))
        # 3 dof, 99.9th percentile ~ 16.27
        assert chi2 < 16.27


class TestMultiRound:
    def test_length_mismatch_raises(self):
        with pytest.raises(SpecDecodeError):
            multi_round_accept(
                np.ones(2) / 2, [0, 1], [np.ones(2) / 2],
                np.random.default_rng(0),
            )

    def test_zero_mass_candidate_skipped(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        chosen, residual = multi_round_accept(
            p, [1], [q], np.random.default_rng(0)
        )
        assert chosen is None
        assert np.allclose(residual, p)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_multi_round_lossless(self, k):
        """k i.i.d. draft candidates + residual fallback ~ target exactly."""
        rng = np.random.default_rng(7)
        p = np.array([0.45, 0.25, 0.2, 0.1])
        q = np.array([0.1, 0.5, 0.2, 0.2])
        n = 30000
        counts = np.zeros(4)
        for _ in range(n):
            tokens, dists = sequential_residual_draws(q, k, rng)
            chosen, residual = multi_round_accept(p, tokens, dists, rng)
            if chosen is not None:
                counts[tokens[chosen]] += 1
            else:
                counts[rng.choice(4, p=residual)] += 1
        chi2 = float(np.sum((counts - n * p) ** 2 / (n * p)))
        assert chi2 < 16.27, f"k={k}: chi2={chi2:.1f}"

    def test_first_match_preferred(self):
        """A candidate equal to the target argmax under greedy accepts."""
        p = np.array([0.0, 1.0, 0.0])
        q = np.array([1 / 3, 1 / 3, 1 / 3])
        chosen, _ = multi_round_accept(
            p, [1, 2], [q, q], np.random.default_rng(0)
        )
        assert chosen == 0


class TestSequentialDraws:
    def test_count_validation(self):
        with pytest.raises(SpecDecodeError):
            sequential_residual_draws(
                np.ones(2) / 2, 0, np.random.default_rng(0)
            )

    def test_draws_match_distribution(self):
        rng = np.random.default_rng(0)
        q = np.array([0.7, 0.2, 0.1])
        tokens, dists = sequential_residual_draws(q, 30000, rng)
        freqs = np.bincount(tokens, minlength=3) / 30000
        assert np.allclose(freqs, q, atol=0.02)
        assert all(d is q or np.shares_memory(d, q) for d in dists)
