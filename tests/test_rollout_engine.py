"""Tests for the fluid rollout simulator and adaptive SD manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware import RooflineModel, get_gpu, get_model
from repro.rollout import (
    AdaptiveSdConfig,
    AdaptiveSdManager,
    ConstantAcceptance,
    MeasuredAcceptance,
    ParametricAcceptance,
    RolloutEngine,
)
from repro.specdec import SdStrategy


@pytest.fixture()
def roofline():
    return RooflineModel(
        model=get_model("Qwen2.5-7B"), gpu=get_gpu("H100"),
        tensor_parallel=4,
    )


def long_tail_lengths(rng, n=64, cap=16000):
    from repro.workload import LognormalLengths

    return LognormalLengths(median=1500, sigma=1.1, cap=cap).sample(
        rng, n
    ).tolist()


class TestAcceptanceModels:
    def test_parametric_monotone_in_depth(self):
        model = ParametricAcceptance()
        accepts = [
            model.accept_length(
                SdStrategy(draft_depth=d, topk=8, tokens_to_verify=64),
                1,
            )
            for d in [2, 4, 8, 16]
        ]
        assert accepts == sorted(accepts)

    def test_parametric_saturates(self):
        """Figure 13(a): gains taper once depth is large."""
        model = ParametricAcceptance()
        gain_early = model.accept_length(
            SdStrategy(draft_depth=8, topk=8, tokens_to_verify=64), 1
        ) - model.accept_length(
            SdStrategy(draft_depth=4, topk=8, tokens_to_verify=64), 1
        )
        gain_late = model.accept_length(
            SdStrategy(draft_depth=16, topk=8, tokens_to_verify=64), 1
        ) - model.accept_length(
            SdStrategy(draft_depth=12, topk=8, tokens_to_verify=64), 1
        )
        assert gain_late < gain_early

    def test_quality_scales_acceptance(self):
        strategy = SdStrategy(draft_depth=8, topk=8, tokens_to_verify=48)
        fresh = ParametricAcceptance(drafter_quality=1.0)
        stale = fresh.with_quality(0.5)
        assert (
            stale.accept_length(strategy, 1)
            < fresh.accept_length(strategy, 1)
        )

    def test_never_exceeds_verify_budget(self):
        model = ParametricAcceptance(e_max=100.0)
        strategy = SdStrategy(draft_depth=30, topk=2, tokens_to_verify=4)
        assert model.accept_length(strategy, 1) <= 5.0

    def test_constant_model(self):
        model = ConstantAcceptance(3.0)
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
        assert model.accept_length(strategy, 1) == 3.0

    def test_measured_lookup_and_default(self):
        strategy = SdStrategy(draft_depth=4, topk=2, tokens_to_verify=8)
        model = MeasuredAcceptance({(4, 2, 8): 3.5})
        assert model.accept_length(strategy, 1) == 3.5
        other = SdStrategy(draft_depth=6, topk=2, tokens_to_verify=8)
        with pytest.raises(ConfigError):
            model.accept_length(other, 1)
        with_default = MeasuredAcceptance({(4, 2, 8): 3.5}, default=2.0)
        assert with_default.accept_length(other, 1) == 2.0


class TestAdaptiveManager:
    def test_elastic_threshold(self):
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=32)
        )
        assert not manager.should_use_sd(100)
        assert manager.should_use_sd(32)
        assert manager.should_use_sd(1)

    def test_switch_overhead_paid_once(self):
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=32,
                             switch_overhead_s=3.0)
        )
        assert manager.engage(16) == 3.0
        assert manager.engage(8) == 0.0
        manager.reset()
        assert manager.engage(16) == 3.0

    def test_engage_above_threshold_raises(self):
        """engage() outside the elastic rule is a caller bug, not a
        silent zero-overhead no-op."""
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=8)
        )
        with pytest.raises(ConfigError):
            manager.engage(100)
        assert manager.activations == 0

    def test_engage_raises_even_when_already_active(self):
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=8)
        )
        assert manager.engage(8) == 3.0
        with pytest.raises(ConfigError):
            manager.engage(9)
        assert manager.activations == 1


class TestRolloutEngine:
    def test_vanilla_profile_monotone(self, roofline):
        engine = RolloutEngine(roofline)
        rng = np.random.default_rng(0)
        timeline = engine.simulate(long_tail_lengths(rng), 512)
        actives = [p.active_requests for p in timeline.points]
        assert actives == sorted(actives, reverse=True)
        assert actives[-1] == 0
        times = [p.time_s for p in timeline.points]
        assert times == sorted(times)

    def test_total_tokens(self, roofline):
        engine = RolloutEngine(roofline)
        lengths = [10, 20, 30]
        timeline = engine.simulate(lengths, 100)
        assert timeline.total_tokens == 60
        assert timeline.prompt_tokens == 300

    def test_sd_accelerates_long_tail(self, roofline):
        rng = np.random.default_rng(0)
        lengths = long_tail_lengths(rng)
        vanilla = RolloutEngine(roofline).simulate(lengths, 512)
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=32)
        )
        adaptive = RolloutEngine(
            roofline, sd_manager=manager
        ).simulate(lengths, 512)
        assert adaptive.total_time_s < vanilla.total_time_s
        assert adaptive.sd_start_s is not None

    def test_sd_starts_at_threshold(self, roofline):
        """Figure 14: SD engages when actives cross the threshold."""
        rng = np.random.default_rng(1)
        lengths = long_tail_lengths(rng, n=128)
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=32)
        )
        timeline = RolloutEngine(
            roofline, sd_manager=manager
        ).simulate(lengths, 512)
        assert timeline.sd_start_s is not None
        for point in timeline.points:
            if point.time_s < timeline.sd_start_s:
                assert point.active_requests > 32 or not point.sd_active

    def test_benefit_guard_blocks_useless_sd(self, roofline):
        """With accept length 1 SD can never pay; the engine must fall
        back to vanilla and finish in the same time."""
        vanilla = RolloutEngine(roofline).simulate([100] * 8, 128)
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(
                activation_threshold=100,
                acceptance=ConstantAcceptance(1.0),
            )
        )
        guarded = RolloutEngine(
            roofline, sd_manager=manager
        ).simulate([100] * 8, 128)
        assert guarded.total_time_s == pytest.approx(
            vanilla.total_time_s, rel=1e-6
        )
        assert guarded.sd_cycles == 0

    def test_empty_lengths_raise(self, roofline):
        with pytest.raises(ConfigError):
            RolloutEngine(roofline).simulate([], 128)

    def test_mab_feedback_recorded(self, roofline):
        rng = np.random.default_rng(2)
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(activation_threshold=64)
        )
        RolloutEngine(roofline, sd_manager=manager).simulate(
            long_tail_lengths(rng, n=32), 256
        )
        snapshot = manager.selector.snapshot()
        assert any(v["observations"] > 0 for v in snapshot.values())


class _CountingSelector:
    """StrategySelector wrapper counting record() calls."""

    def __init__(self, inner):
        self.inner = inner
        self.records = 0

    def select(self, batch_size):
        return self.inner.select(batch_size)

    def record(self, strategy, elapsed_time, accept_lengths, batch_size):
        self.records += 1
        self.inner.record(
            strategy, elapsed_time, accept_lengths, batch_size
        )

    def snapshot(self):
        return self.inner.snapshot()


class TestSimulatorBugfixes:
    """Regression tests for the sd_start / bandit-feedback fixes."""

    def test_zero_switch_overhead_still_marks_sd_active(self, roofline):
        """With switch_overhead_s=0 the timeline must still report when
        SD engaged (sd_start_s was previously left None forever)."""
        rng = np.random.default_rng(3)
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(
                activation_threshold=32, switch_overhead_s=0.0
            )
        )
        timeline = RolloutEngine(
            roofline, sd_manager=manager
        ).simulate(long_tail_lengths(rng), 512)
        assert manager.activations == 1
        assert timeline.sd_start_s is not None
        assert any(p.sd_active for p in timeline.points)

    def test_sd_start_matches_nonzero_overhead_run(self, roofline):
        """Zero and nonzero overhead runs engage at the same moment."""
        lengths = long_tail_lengths(np.random.default_rng(4))

        def run(overhead):
            manager = AdaptiveSdManager(
                AdaptiveSdConfig(
                    activation_threshold=32, switch_overhead_s=overhead
                )
            )
            return RolloutEngine(roofline, sd_manager=manager).simulate(
                lengths, 512
            )

        with_overhead = run(3.0)
        without = run(0.0)
        assert without.sd_start_s == pytest.approx(
            with_overhead.sd_start_s
        )
        # The zero-overhead run finishes exactly the overhead earlier.
        assert without.total_time_s == pytest.approx(
            with_overhead.total_time_s - 3.0
        )

    def test_bandit_ignores_skipped_cycles(self, roofline):
        """When the payoff guard vetoes SD, the vetoed cycle must not be
        recorded (it never executed)."""
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(
                activation_threshold=100,
                acceptance=ConstantAcceptance(1.0),
            )
        )
        timeline = RolloutEngine(
            roofline, sd_manager=manager
        ).simulate([100] * 8, 128)
        assert timeline.sd_cycles == 0
        snapshot = manager.selector.snapshot()
        assert all(v["observations"] == 0 for v in snapshot.values())

    def test_bandit_window_matches_executed_segments(self, roofline):
        """Every record() corresponds to one executed SD segment."""
        from repro.tuner.mab import BegMabSelector
        from repro.specdec import default_strategy_pool

        pool = default_strategy_pool()
        counting = _CountingSelector(
            BegMabSelector(pool, [1, 4, 8, 16])
        )
        manager = AdaptiveSdManager(
            AdaptiveSdConfig(
                activation_threshold=64, selector=counting
            )
        )
        lengths = [100, 200, 300, 400, 500, 600, 700, 800]
        timeline = RolloutEngine(
            roofline, sd_manager=manager
        ).simulate(lengths, 128)
        # Distinct lengths => one decode segment per completion; SD pays
        # at these small batches, so every segment records exactly once.
        assert timeline.sd_cycles > 0
        assert counting.records == len(lengths)
        total_obs = sum(
            v["observations"]
            for v in counting.snapshot().values()
        )
        assert total_obs == counting.records
