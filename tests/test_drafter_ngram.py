"""Tests for the model-free n-gram retrieval drafter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drafter import NgramDrafter, NgramDrafterConfig
from repro.errors import DrafterError


@pytest.fixture()
def drafter():
    return NgramDrafter(NgramDrafterConfig(vocab_size=16, max_order=3))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(vocab_size=1),
            dict(vocab_size=8, max_order=0),
            dict(vocab_size=8, smoothing=0.0),
            dict(vocab_size=8, smoothing=1.0),
            dict(vocab_size=8, max_entries=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(DrafterError):
            NgramDrafterConfig(**kwargs)


class TestDatabase:
    def test_learns_repeated_pattern(self, drafter):
        sequence = [3, 4, 5, 6] * 10
        drafter.observe_rollouts([sequence])
        state = drafter.begin([3, 4, 5], None)
        probs = drafter.propose(state, 1.0)
        assert probs.argmax() == 6

    def test_uniform_without_data(self, drafter):
        state = drafter.begin([3, 4, 5], None)
        probs = drafter.propose(state, 1.0)
        assert np.allclose(probs, 1.0 / 16)

    def test_full_support_after_smoothing(self, drafter):
        drafter.observe_rollouts([[3, 4, 5, 6] * 5])
        state = drafter.begin([4, 5], None)
        probs = drafter.propose(state, 1.0)
        assert (probs > 0).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_backoff_to_shorter_order(self, drafter):
        drafter.observe_rollouts([[7, 8] * 10])
        # Context (3, 4, 8) unseen at order 3 and 2; order-1 context (8,)
        # has been seen followed by 7.
        state = drafter.begin([3, 4, 8], None)
        probs = drafter.propose(state, 1.0)
        assert probs.argmax() == 7

    def test_clear(self, drafter):
        drafter.observe_rollouts([[3, 4, 5, 6]])
        drafter.clear()
        assert drafter.num_contexts == 0
        state = drafter.begin([3, 4, 5], None)
        assert np.allclose(drafter.propose(state, 1.0), 1.0 / 16)

    def test_entry_cap_respected(self):
        config = NgramDrafterConfig(
            vocab_size=16, max_order=2, max_entries=5
        )
        drafter = NgramDrafter(config)
        rng = np.random.default_rng(0)
        drafter.observe_rollouts(
            [rng.integers(3, 16, size=50).tolist() for _ in range(5)]
        )
        assert drafter.num_contexts <= 5


class TestStateMachine:
    def test_begin_truncates_context(self, drafter):
        state = drafter.begin(list(range(10)), None)
        assert state.context == (7, 8, 9)

    def test_extend_shifts(self, drafter):
        state = drafter.begin([1, 2, 3], None)
        state = drafter.extend(state, 9)
        assert state.context == (2, 3, 9)

    def test_begin_empty_raises(self, drafter):
        with pytest.raises(DrafterError):
            drafter.begin([], None)

    def test_not_trainable(self, drafter):
        assert not drafter.trainable

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_context_is_suffix(self, tokens):
        drafter = NgramDrafter(
            NgramDrafterConfig(vocab_size=16, max_order=3)
        )
        state = drafter.begin(tokens, None)
        assert state.context == tuple(tokens[-3:])


class TestSequenceSimilarityExploitation:
    def test_accept_length_improves_with_database(self, target):
        """The paper's §5.3 claim: rollout similarity makes retrieval
        drafting effective for repeated structure.

        At low temperature the target's transitions are concentrated, so
        the cold drafter's uniform proposals rarely survive while the warm
        database captures the dominant continuations.
        """
        from repro.llm import generate
        from repro.specdec import SdStrategy, speculative_generate

        temperature = 0.25
        config = NgramDrafterConfig(vocab_size=target.config.vocab_size)
        cold = NgramDrafter(config)
        warm = NgramDrafter(config)
        prompts = [[5, 6, 7]] * 12
        rollouts = generate(
            target, prompts, max_new_tokens=40, temperature=temperature,
            rng=np.random.default_rng(1),
        )
        warm.observe_rollouts(rollouts.full_sequences)
        strategy = SdStrategy(draft_depth=3, topk=2, tokens_to_verify=6)
        out_cold = speculative_generate(
            target, cold, prompts, max_new_tokens=40,
            temperature=temperature,
            rng=np.random.default_rng(2), strategy=strategy,
        )
        out_warm = speculative_generate(
            target, warm, prompts, max_new_tokens=40,
            temperature=temperature,
            rng=np.random.default_rng(2), strategy=strategy,
        )
        assert (
            out_warm.metrics.mean_accept_length
            > out_cold.metrics.mean_accept_length
        )
