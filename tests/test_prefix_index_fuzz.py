"""Property/fuzz tests: PrefixIndex vs a naive set-of-tuples reference.

The radix tree's split/merge/prune paths are the foundation the
block-granular cache walks on every admission; these tests pin them
against a reference implementation so obvious that it cannot be wrong —
a plain set of tuples with brute-force prefix scans.  Random
insert/remove/query interleavings under fixed seeds keep every run
reproducible.
"""

import numpy as np
import pytest

from repro.cache.prefix_index import PrefixIndex, common_prefix_len


class _NaiveIndex:
    """Reference semantics: a set of tuples plus linear scans."""

    def __init__(self):
        self.members = set()

    def insert(self, key):
        if key in self.members:
            return False
        self.members.add(key)
        return True

    def remove(self, key):
        if key not in self.members:
            return False
        self.members.discard(key)
        return True

    def contains(self, key):
        return key in self.members

    def longest_prefix(self, key):
        best = 0
        for member in self.members:
            best = max(best, common_prefix_len(key, member))
        return best

    def longest_member(self, key):
        best = 0
        for member in self.members:
            if len(member) <= len(key) and key[: len(member)] == member:
                best = max(best, len(member))
        return best


def _random_key(rng, alphabet, max_len):
    length = int(rng.integers(1, max_len + 1))
    return tuple(int(t) for t in rng.integers(0, alphabet, size=length))


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
def test_fuzz_against_naive_reference(seed):
    # A small alphabet and short keys force heavy prefix overlap, which
    # is what exercises edge splits, merges, and prune chains.
    rng = np.random.default_rng(seed)
    index = PrefixIndex()
    naive = _NaiveIndex()
    for _ in range(600):
        op = rng.integers(0, 10)
        key = _random_key(rng, alphabet=4, max_len=8)
        if op < 4:
            assert index.insert(key) == naive.insert(key)
        elif op < 7:
            if op == 5 and naive.members:
                # Bias half the removals toward actual members so the
                # prune/merge paths run, not just the miss path.
                members = sorted(naive.members)
                key = members[int(rng.integers(0, len(members)))]
            assert index.remove(key) == naive.remove(key)
        else:
            assert index.contains(key) == naive.contains(key)
            assert index.longest_prefix(key) == naive.longest_prefix(key)
            assert index.longest_member(key) == naive.longest_member(key)
        assert len(index) == len(naive.members)
    assert sorted(index.iter_sequences()) == sorted(naive.members)


@pytest.mark.parametrize("seed", [3, 11])
def test_fuzz_drain_to_empty(seed):
    # Insert a batch, then remove every member in random order; the
    # tree must prune back to exactly the surviving set at every step.
    rng = np.random.default_rng(seed)
    index = PrefixIndex()
    keys = {_random_key(rng, alphabet=3, max_len=6) for _ in range(80)}
    for key in sorted(keys):
        assert index.insert(key)
    order = sorted(keys)
    rng.shuffle(order)
    remaining = set(keys)
    for key in order:
        assert index.remove(key)
        remaining.discard(key)
        assert len(index) == len(remaining)
        probe = _random_key(rng, alphabet=3, max_len=6)
        naive = _NaiveIndex()
        naive.members = remaining
        assert index.longest_prefix(probe) == naive.longest_prefix(probe)
    assert len(index) == 0
    assert list(index.iter_sequences()) == []


def test_longest_member_vs_longest_prefix_divergence():
    # longest_prefix credits partial edge matches; longest_member only
    # credits stored sequences — the distinction the block walk relies
    # on (every cached block's prefix IS a member).
    index = PrefixIndex()
    index.insert((1, 2))
    index.insert((1, 2, 3, 4, 5, 6))
    query = (1, 2, 3, 4, 9)
    assert index.longest_prefix(query) == 4   # partial edge credit
    assert index.longest_member(query) == 2   # only (1, 2) is stored
    assert index.longest_member((1, 2, 3, 4, 5, 6, 7)) == 6
    assert index.longest_member((9, 9)) == 0
